// The unified benchmark point set: every simulated figure/ablation sweep
// from EXPERIMENTS.md re-expressed as runner::RunPoints, so one driver
// (bench/bench_all) can execute them — serially or across a thread pool —
// and emit a machine-readable BENCH_results.json trajectory.
//
// Each point runs a fresh SimCluster with tracing enabled (small ring;
// the digest covers the full stream), so every point carries the run
// digest that CI compares between pooled and serial execution.  Serial
// speedup baselines come from core::serial_*_total, which memoizes one
// serial run per problem size process-wide (thread-safe).
//
// Suites mirror the standalone bench binaries they subsume (analytic
// closed-form columns stay with those binaries — they are free to
// compute and carry no digest):
//   fig8a_fft_sim          FFT speedup, 3 interconnects × 2 sizes × P
//   fig8b_sort_sim         sort speedup, 3 interconnects × P
//   fig4b_transpose        transpose decomposition vs partition (GigE)
//   fig5a_sort_components  sort component times (GigE)
//   ablation_packet_size   INIC packet-size sweep (sort)
//   ablation_dma_threshold card-to-host DMA threshold sweep (sort)
//   fig_scaling_topology   collectives over multi-hop fabrics, P to 1024
#pragma once

#include <vector>

#include "net/lp_workload.hpp"
#include "runner/sweep.hpp"

namespace acc::runner {

/// Builds the full sweep (`reduced` = false: the exact point grid the
/// EXPERIMENTS.md tables plot) or a reduced CI-sized grid (smaller
/// problems, P <= 4 for the figure suites, P <= 256 for the topology
/// scaling suite) that exercises every suite in seconds.
std::vector<RunPoint> figure_sweep_points(bool reduced);

/// The fig_scaling_topology suite on its own: barrier + topology-aware
/// broadcast/reduce over star, fat-tree and torus fabrics
/// (docs/NETWORK.md), recording per-link congestion summaries.  Reduced
/// keeps P <= 256; full adds the 1024-node fat-tree and torus points.
/// Included in figure_sweep_points; exposed separately so the
/// bench/fig_scaling_topology driver can run just this grid.
std::vector<RunPoint> topology_scaling_points(bool reduced);

/// The collectives suite on its own: backend (host/TCP vs NIC-resident)
/// × topology × rank-count grid, barrier + topology-aware allreduce per
/// point.  Counters expose the host-cost split the NIC engine is meant
/// to eliminate — traced CPU/IRQ event counts, interrupts delivered,
/// summed host CPU nanoseconds — plus the trigger-fire tally on the
/// card plane.  Included in figure_sweep_points; exposed separately so
/// the bench/collectives_compare driver can run just this grid.
std::vector<RunPoint> collective_points(bool reduced);

/// The failover-recovery suite on its own: permanent interior-link cuts
/// (single and double) against live collectives on multi-hop fabrics
/// with adaptive routing on and the degraded TCP fallback OFF, per
/// backend.  Each point reports the recovery latency (first cut to the
/// fabric's re-convergence instant), post-failover goodput of a bulk
/// transfer over the re-converged route, and the route-epoch /
/// reroute-grant tallies; a point throws (runner marks it failed) if a
/// collective fails verification or any card writes a peer off.
/// Included in figure_sweep_points; exposed separately for the
/// bench/failover_recovery driver.
std::vector<RunPoint> failover_points(bool reduced);

/// The chaos-recovery suite: the scripted fault storms of
/// bench/chaos_recovery (bursty loss, corruption, link flap, card
/// reset, degraded port, all-at-once) against verified FFT and sort
/// runs on a hardened INIC cluster.  Counters carry the clean-vs-
/// faulted timelines and the recovery machinery's visible work
/// (fallback transfers, retransmits, CRC drops).  Included in
/// figure_sweep_points; exposed separately for the bench/chaos_recovery
/// driver.
std::vector<RunPoint> chaos_recovery_points(bool reduced);

/// The serving suite: the open-loop Zipf-skewed KV workload
/// (apps/kv_app.hpp) over a (plane × topology × arrival rate × chaos)
/// grid — host TCP vs hardened INIC, clean fabric vs sustained ~30%
/// bursty loss.  Every point fills RunMetrics::latency (the schema-v3
/// `latency` object: nearest-rank p50/p99/p999, mean, max, goodput) from
/// the run's deterministic latency histogram, and mirrors the tail into
/// counters for the serial-vs-pooled comparison.  A point throws if any
/// response carries a wrong value or a request goes unanswered.
/// Included in figure_sweep_points; exposed separately for the
/// bench/serving_tail driver.
std::vector<RunPoint> serving_points(bool reduced);

/// The engine-scaling suite: LP-partitioned fabric traffic
/// (net/lp_workload.hpp) on the parallel event engine at 1/2/4 worker
/// threads.  Each point reports the thread-count-independent run digest
/// and per-shard stats; threads > 1 points additionally report speedup
/// over the shape's memoized 1-thread baseline and the derived
/// `scaling_efficiency` (BENCH_results.json v4).  The full grid's
/// 1024-host fat-tree point carries the CI speedup floor enforced by
/// bench/engine_scaling --check-floor.  Included in figure_sweep_points;
/// exposed separately for the bench/engine_scaling driver.
std::vector<RunPoint> engine_scaling_points(bool reduced);

/// The CI speedup-floor shape: the full engine_scaling grid's 1024-host
/// fat-tree workload.  bench/engine_scaling --check-floor re-measures
/// exactly this config, so the gate and the grid cannot drift apart.
net::LpWorkloadConfig engine_scaling_floor_config();

/// One SimCluster engine-scaling run: a neighbour-ring INIC transfer
/// workload on a fat-tree cluster with the full device models (cards,
/// DMA, switch FIFOs) sharded across per-switch LPs when threads >= 2.
/// Digest semantics follow docs/TRACING.md: threads <= 1 reports the
/// historical serial digest; any threads >= 2 report one common sharded
/// digest (per-lane frame ids), so floor checks compare wall clock
/// 1-vs-4 but digests only among sharded runs.
struct ClusterScalingRun {
  Time sim_time = Time::zero();
  std::uint64_t digest = 0;
  std::uint64_t trace_records = 0;
  std::uint64_t events = 0;
  std::size_t lp_count = 1;
  std::uint64_t windows = 0;
  std::uint64_t cross_posts = 0;
  std::vector<ShardSummary> shards;  // empty for serial runs
};
ClusterScalingRun run_cluster_scaling_point(std::size_t hosts,
                                            std::size_t threads);

/// The SimCluster half of the CI speedup floor: hosts for the pinned
/// 1024-host fat-tree cluster shape bench/engine_scaling re-measures.
constexpr std::size_t kClusterScalingFloorHosts = 1024;

}  // namespace acc::runner
