// Parallel-engine scaling sweep: the engine_scaling suite on its own.
//
// Runs the LP-partitioned fabric workload (net/lp_workload.hpp) at
// 1/2/4 worker threads over the engine_scaling grid and reports, per
// point, events/sec (shard-aggregated: total events over the slowest
// shard's busy time), speedup over the shape's 1-thread baseline, and
// the derived scaling efficiency — the BENCH_results.json v4 fields.
//
// Usage:
//   engine_scaling [--points=full|reduced] [--out=PATH] [--check-floor]
//
// The sweep pool is intentionally pinned to ONE thread: each point owns
// a private worker pool, and running scaling points beside each other
// would corrupt every wall-clock ratio the suite exists to measure.
//
// --check-floor is the CI gate for the parallel engine: it re-measures
// the 1024-host fat-tree shape (runner::engine_scaling_floor_config())
// back-to-back at 1 and 4 threads and fails unless the best of three
// attempts reaches a 1.6x speedup — first on the synthetic LP workload,
// then on the 1024-host SimCluster shape whose device models (cards,
// DMA, switch FIFOs) ride the per-switch LPs.  On hosts reporting fewer
// than 4 cores the gate prints SKIPPED and exits 0 (4 time-sliced
// workers on 1 core can never beat 1.0x — that is physics, not a
// regression).  Determinism is NOT this gate's job (digests are
// compared across thread counts by tests/parallel_scaling_test.cpp);
// this one keeps the parallelism real.  The only digest comparisons
// here abort on divergence: 1-vs-4 threads for the LP workload, and
// 2-vs-4 threads for the SimCluster shape (its serial digest is a
// different constant by design — per-lane frame ids; see
// docs/TRACING.md).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "net/lp_workload.hpp"
#include "runner/bench_json.hpp"
#include "runner/bench_points.hpp"
#include "runner/sweep.hpp"

using namespace acc;

namespace {

struct Options {
  bool reduced = false;
  bool check_floor = false;
  std::string out = "BENCH_results.json";
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--points=reduced") {
      opts.reduced = true;
    } else if (arg == "--points=full") {
      opts.reduced = false;
    } else if (arg.rfind("--out=", 0) == 0) {
      opts.out = arg.substr(6);
    } else if (arg == "--check-floor") {
      opts.check_floor = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::int64_t counter(const runner::RunRecord& r, const char* name) {
  for (const auto& [key, value] : r.metrics.counters) {
    if (key == name) return value;
  }
  return 0;
}

/// One floor attempt: the pinned shape at 1 then 4 threads,
/// back-to-back on an otherwise idle process.  Returns the speedup.
double floor_attempt(const net::LpWorkloadConfig& cfg) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto serial = net::run_lp_workload(cfg, /*threads=*/1);
  const auto t1 = clock::now();
  const auto parallel = net::run_lp_workload(cfg, /*threads=*/4);
  const auto t2 = clock::now();
  if (serial.digest != parallel.digest ||
      serial.checksum != parallel.checksum) {
    std::fprintf(stderr,
                 "FLOOR ABORT: 1-thread and 4-thread runs diverged "
                 "(digest %s vs %s) — determinism bug, not a perf issue\n",
                 runner::digest_hex(serial.digest).c_str(),
                 runner::digest_hex(parallel.digest).c_str());
    return -1.0;
  }
  const double serial_s = std::chrono::duration<double>(t1 - t0).count();
  const double parallel_s = std::chrono::duration<double>(t2 - t1).count();
  if (parallel_s <= 0.0) return 0.0;
  return serial_s / parallel_s;
}

/// One SimCluster floor attempt: the pinned 1024-host cluster shape at
/// 1 then 4 threads.  `sharded_digest` carries the 2-thread reference
/// digest across attempts (serial and sharded digests are different
/// constants by design, so the determinism abort compares 4-thread runs
/// against the 2-thread reference, never against serial).
double cluster_floor_attempt(std::uint64_t sharded_digest) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto serial =
      runner::run_cluster_scaling_point(runner::kClusterScalingFloorHosts,
                                        /*threads=*/1);
  const auto t1 = clock::now();
  const auto parallel =
      runner::run_cluster_scaling_point(runner::kClusterScalingFloorHosts,
                                        /*threads=*/4);
  const auto t2 = clock::now();
  if (parallel.digest != sharded_digest) {
    std::fprintf(stderr,
                 "CLUSTER FLOOR ABORT: 4-thread digest %s diverged from "
                 "the 2-thread reference %s — determinism bug, not a perf "
                 "issue\n",
                 runner::digest_hex(parallel.digest).c_str(),
                 runner::digest_hex(sharded_digest).c_str());
    return -1.0;
  }
  if (parallel.sim_time != serial.sim_time) {
    std::fprintf(stderr,
                 "CLUSTER FLOOR ABORT: sharded end time diverged from "
                 "serial — equivalence bug, not a perf issue\n");
    return -1.0;
  }
  const double serial_s = std::chrono::duration<double>(t1 - t0).count();
  const double parallel_s = std::chrono::duration<double>(t2 - t1).count();
  if (parallel_s <= 0.0) return 0.0;
  return serial_s / parallel_s;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  const auto points = runner::engine_scaling_points(opts.reduced);
  runner::SweepRunner pool(/*threads=*/1);  // see header comment
  print_banner("engine_scaling: " + std::to_string(points.size()) +
               " points (" + std::string(opts.reduced ? "reduced" : "full") +
               "), serial sweep (each point owns a worker pool)");
  const auto results = pool.run(points);

  Table table({"point", "LPs", "events", "windows", "cross posts",
               "events/sec", "speedup", "efficiency", "digest"});
  int failed = 0;
  for (const auto& r : results) {
    table.row().add(r.name);
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAILED %s: %s\n", r.name.c_str(), r.error.c_str());
      table.add("ERROR: " + r.error);
      for (int i = 0; i < 7; ++i) table.skip();
      continue;
    }
    table.add(counter(r, "lp_count"))
        .add(static_cast<std::int64_t>(r.metrics.events))
        .add(counter(r, "windows"))
        .add(counter(r, "cross_posts"))
        .add(r.events_per_sec(), 0)
        .add(r.metrics.speedup, 2)
        .add(r.metrics.scaling_efficiency, 2)
        .add(runner::digest_hex(r.metrics.digest));
  }
  table.print();

  if (opts.out != "-") {
    runner::BenchJsonMeta meta;
    meta.point_set = opts.reduced ? "reduced" : "full";
    meta.threads = pool.threads();
    meta.sweep_wall_ms = pool.last_sweep_wall_ms();
    std::ofstream out(opts.out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
      return 2;
    }
    runner::write_bench_json(out, results, meta);
    std::printf("wrote %s\n", opts.out.c_str());
  }

  int floor_failures = 0;
  if (opts.check_floor) {
    const double kFloor = 1.6;
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores < 4) {
      // A 4-thread speedup floor on a host with fewer than 4 cores is
      // vacuously red: the workers time-slice one another and the best
      // possible "speedup" is ~1.0x.  Skip loudly rather than fail —
      // the determinism half of the contract is still fully checked by
      // tests/parallel_scaling_test.cpp on any core count.
      std::printf("\nfloor check SKIPPED: host reports %u core(s); the "
                  ">= %.1fx @ 4 threads gate needs >= 4\n",
                  cores, kFloor);
      return failed ? 1 : 0;
    }
    const net::LpWorkloadConfig cfg = runner::engine_scaling_floor_config();
    std::printf("\n== speedup floor: fat_tree(3) %zu hosts, 4 threads, "
                ">= %.1fx ==\n",
                cfg.hosts, kFloor);
    double best = 0.0;
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const double s = floor_attempt(cfg);
      if (s < 0.0) return 1;  // determinism divergence: fail immediately
      std::printf("attempt %d: %.2fx\n", attempt, s);
      if (s > best) best = s;
      if (best >= kFloor) break;  // no need to burn more CI time
    }
    if (best >= kFloor) {
      std::printf("floor passed: best %.2fx >= %.1fx\n", best, kFloor);
    } else {
      ++floor_failures;
      std::fprintf(stderr,
                   "FLOOR FAILED: best speedup %.2fx < %.1fx at 4 threads\n",
                   best, kFloor);
    }

    std::printf("\n== SimCluster speedup floor: fat_tree(3) %zu hosts, "
                "4 threads, >= %.1fx ==\n",
                runner::kClusterScalingFloorHosts, kFloor);
    // 2-thread reference digest for the cross-thread determinism abort
    // (the serial digest is a different constant by design).
    const auto two =
        runner::run_cluster_scaling_point(runner::kClusterScalingFloorHosts,
                                          /*threads=*/2);
    double cluster_best = 0.0;
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const double s = cluster_floor_attempt(two.digest);
      if (s < 0.0) return 1;  // determinism divergence: fail immediately
      std::printf("attempt %d: %.2fx\n", attempt, s);
      if (s > cluster_best) cluster_best = s;
      if (cluster_best >= kFloor) break;
    }
    if (cluster_best >= kFloor) {
      std::printf("cluster floor passed: best %.2fx >= %.1fx\n",
                  cluster_best, kFloor);
    } else {
      ++floor_failures;
      std::fprintf(stderr,
                   "CLUSTER FLOOR FAILED: best speedup %.2fx < %.1fx at "
                   "4 threads\n",
                   cluster_best, kFloor);
    }
  }
  return (failed || floor_failures) ? 1 : 0;
}
