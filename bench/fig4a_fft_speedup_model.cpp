// Figure 4(a): FFTW speedups for an Intelligent NIC vs. a Gigabit
// Ethernet cluster, 256x256 and 512x512, P = 1..16.
//
// As in the paper, the INIC curves come from the analytic model of
// Section 4.1 (Equations 3-10) while the Gigabit Ethernet curves are
// "measured" — here, produced by the discrete-event simulator.  Rows
// where the simulator needs P | n print "-" for the simulated series
// (the paper's footnote 2 interpolated those points for plotting).
#include <cstdio>
#include <map>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "model/fft_model.hpp"

using namespace acc;

int main() {
  print_banner("Figure 4(a): FFT speedup, INIC (analytic) vs Gigabit Ethernet (simulated)");

  model::FftAnalyticModel fft_model;
  Table table({"P", "INIC 256x256", "INIC 512x512", "GigE 256x256",
               "GigE 512x512"});

  // Hoisted serial baselines: one run per matrix size for the whole
  // sweep (the model holds a calibration *copy*, so this bench hoists
  // explicitly rather than relying on core::serial_fft_total's
  // default-calibration cache).
  std::map<std::size_t, Time> serial;
  for (std::size_t n : {std::size_t{256}, std::size_t{512}}) {
    serial[n] = apps::run_serial_fft(fft_model.calibration(), n).total;
  }

  for (std::size_t p = 1; p <= 16; ++p) {
    table.row().add(static_cast<std::int64_t>(p));
    for (std::size_t n : {std::size_t{256}, std::size_t{512}}) {
      if (n % p == 0) {
        table.add(fft_model.inic_speedup(n, p), 2);
      } else {
        table.skip();
      }
    }
    for (std::size_t n : {std::size_t{256}, std::size_t{512}}) {
      if (n % p == 0) {
        const auto point =
            core::fft_point(apps::Interconnect::kGigabitTcp, n, p);
        table.add(serial[n] / point.total, 2);
      } else {
        table.skip();
      }
    }
  }
  table.print();

  std::puts("\nExpected shape (paper): INIC near-linear with no sign of"
            "\nflattening; Gigabit Ethernet flattens around 2-4x.");
  return 0;
}
