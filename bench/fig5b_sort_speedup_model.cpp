// Figure 5(b): integer-sort parallel speedups, INIC vs Gigabit Ethernet,
// E_init = 2^25 keys, P = 1..16.
//
// INIC series: the analytic model of Section 4.2 (Equations 11-17).
// Gigabit series: the simulated TCP implementation.  The INIC speedups
// are superlinear because the serial baseline's bucket-sort passes
// ("over 5 seconds") are absorbed into the INIC stream.
#include <cstdio>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "model/sort_model.hpp"

using namespace acc;

int main() {
  print_banner("Figure 5(b): integer sort speedup, INIC (analytic) vs GigE (simulated)");

  const std::size_t keys = std::size_t{1} << 25;
  const std::size_t cache_buckets = 256;
  model::SortAnalyticModel sort_model;
  const Time serial = sort_model.serial_time(keys);

  Table table({"P", "INIC speedup", "GigE speedup"});
  for (std::size_t p : {1, 2, 4, 8, 16}) {
    const double inic = sort_model.inic_speedup(keys, p, cache_buckets);
    const auto gige = core::sort_point(apps::Interconnect::kGigabitTcp, keys, p);
    table.row()
        .add(static_cast<std::int64_t>(p))
        .add(inic, 2)
        .add(serial / gige.total, 2);
  }
  table.print();

  std::puts(
      "\nExpected shape (paper): INIC superlinear (absorbed bucket sorts),"
      "\nGigabit Ethernet sublinear and flattening.");
  return 0;
}
