// Ablation: where to put the reconfigurable computing (Section 7).
//
// "Relatively low PCI bus speeds have always hindered RC and this
// problem is further complicated when the PCI bus is shared with cluster
// network traffic.  Avoiding this by integrating the RC with the NIC is
// an important innovation."
//
// Scenario: every byte of a stream must be (a) transformed by a kernel
// and (b) transmitted to another node.  Three placements:
//
//   host CPU + NIC     data crosses PCI once (to the NIC); the kernel
//                      runs on the host at memory-hierarchy speed;
//   PCI RC card + NIC  (Tower-of-Power style) data crosses the shared
//                      PCI bus three times: host->RC, RC->host,
//                      host->NIC — the kernel is fast but the bus isn't;
//   INIC               data crosses PCI once and is transformed in the
//                      network datapath at stream rate, for free.
//
// Simulated end-to-end with the same network and node models as the
// figure benches.
#include <cstdio>

#include "common/table.hpp"
#include "core/acc.hpp"

using namespace acc;

namespace {

/// Host-kernel cost per byte: a memory-bound transform (one pass in, one
/// pass out of the hierarchy at DRAM bandwidth for large streams).
Time host_kernel_time(apps::SimCluster& cluster, Bytes size) {
  return cluster.node(0).cpu().memory().pass_time(size, size) * 2.0;
}

/// Sends `size` transformed bytes node 0 -> node 1 with the kernel at
/// the given placement; returns end-to-end completion time.
Time run_case(int placement, Bytes size) {
  // Placements: 0 = host kernel, 1 = PCI RC card, 2 = INIC.
  const bool inic = placement == 2;
  apps::SimCluster cluster(2,
                           inic ? apps::Interconnect::kInicIdeal
                                : apps::Interconnect::kGigabitTcp);

  sim::ProcessGroup group(cluster.engine());
  if (inic) {
    group.spawn([](apps::SimCluster& c, Bytes sz) -> sim::Process {
      // Transform rides the stream: just send.
      co_await c.card(0).send_stream(1, sz, 0, std::any{});
    }(cluster, size));
    group.spawn([](apps::SimCluster& c) -> sim::Process {
      (void)co_await c.card(1).card_inbox().recv();
    }(cluster));
  } else {
    group.spawn([placement](apps::SimCluster& c, Bytes sz) -> sim::Process {
      if (placement == 0) {
        // Kernel on the host CPU.
        co_await c.node(0).cpu().compute(host_kernel_time(c, sz));
      } else {
        // Kernel on a PCI RC card: the data makes two extra crossings of
        // the same shared PCI bus the NIC uses (host->RC, RC->host); the
        // FPGA itself keeps up with the bus.
        co_await c.node(0).dma().transfer(sz);  // host -> RC
        co_await c.node(0).dma().transfer(sz);  // RC -> host
      }
      co_await c.tcp(0).send_message(1, sz, 0, std::any{});
    }(cluster, size));
    group.spawn([](apps::SimCluster& c) -> sim::Process {
      (void)co_await c.tcp(1).inbox().recv();
    }(cluster));
  }
  return group.join();
}

}  // namespace

int main() {
  print_banner(
      "Ablation: RC placement — host kernel vs PCI RC card vs INIC "
      "(transform + transmit)");

  Table table({"stream", "host CPU (ms)", "PCI RC card (ms)", "INIC (ms)",
               "INIC win vs PCI RC"});
  for (std::uint64_t mib : {1ull, 4ull, 16ull}) {
    const Bytes size = Bytes::mib(mib);
    const Time host = run_case(0, size);
    const Time pci_rc = run_case(1, size);
    const Time inic = run_case(2, size);
    table.row()
        .add(to_string(size))
        .add(host.as_millis(), 1)
        .add(pci_rc.as_millis(), 1)
        .add(inic.as_millis(), 1)
        .add(pci_rc / inic, 2);
  }
  table.print();

  std::puts(
      "\nExpected (paper, Section 7): the PCI-attached RC card is hobbled"
      "\nby the shared bus (3 crossings per byte); the INIC transforms in"
      "\nthe datapath and beats both alternatives.");
  return 0;
}
