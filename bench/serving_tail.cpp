// Serving-tail sweep: the open-loop Zipf-skewed KV workload
// (docs/SERVING.md) over the (plane × topology × rate × chaos) grid of
// runner::serving_points — host TCP vs hardened INIC, clean fabric vs
// sustained ~30% bursty loss.
//
// Each point reports the tail of its per-request latency distribution
// (nearest-rank p50/p99/p999 from the deterministic latency histogram)
// plus goodput; the JSON lands in BENCH_results.json's schema-v3
// `latency` object.  The headline question is printed as a gate: does
// the smart NIC hold a better p99 than the host plane under the same
// 30%-loss storm?  A NIC point with a p99 at or above its matched host
// point fails the run (non-zero exit).
//
// Usage:
//   serving_tail [--threads=N] [--points=full|reduced] [--plane=host|nic]
//                [--topology=NAME] [--out=PATH] [--check-digests]
//
// Flags behave as in bench_all / failover_recovery; --check-digests
// re-runs every point serially and compares digests, counters, and sim
// times against the pooled run (the latency summary is covered too — it
// is mirrored into the counters).  This grid also rides in bench_all's
// sweep as the serving_tail suite.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "runner/bench_json.hpp"
#include "runner/bench_points.hpp"
#include "runner/sweep.hpp"

using namespace acc;

namespace {

struct Options {
  std::size_t threads = 0;  // 0 = hardware concurrency
  bool reduced = false;
  bool check_digests = false;
  std::string plane;     // empty = both
  std::string topology;  // empty = every shape
  std::string out = "BENCH_results.json";
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    } else if (arg == "--points=reduced") {
      opts.reduced = true;
    } else if (arg == "--points=full") {
      opts.reduced = false;
    } else if (arg.rfind("--plane=", 0) == 0) {
      opts.plane = arg.substr(8);
      if (opts.plane != "host" && opts.plane != "nic") {
        std::fprintf(stderr, "unknown plane: %s (host|nic)\n",
                     opts.plane.c_str());
        return false;
      }
    } else if (arg.rfind("--topology=", 0) == 0) {
      opts.topology = arg.substr(11);
    } else if (arg.rfind("--out=", 0) == 0) {
      opts.out = arg.substr(6);
    } else if (arg == "--check-digests") {
      opts.check_digests = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string param(const std::vector<std::pair<std::string, std::string>>& ps,
                  const char* name) {
  for (const auto& [key, value] : ps) {
    if (key == name) return value;
  }
  return "";
}

/// The host point matching a NIC point: same params except the plane.
const runner::RunRecord* matched_host(
    const std::vector<runner::RunRecord>& results,
    const runner::RunRecord& nic) {
  for (const auto& r : results) {
    if (param(r.params, "plane") != "host") continue;
    if (param(r.params, "topology") == param(nic.params, "topology") &&
        param(r.params, "rate_hz") == param(nic.params, "rate_hz") &&
        param(r.params, "chaos") == param(nic.params, "chaos")) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  auto points = runner::serving_points(opts.reduced);
  // The p99 gate needs the NIC point's host twin, so --plane only trims
  // the *table*, never the run set, when the gate is in play; filtering
  // the run set is still right for topology.
  if (!opts.topology.empty()) {
    std::vector<runner::RunPoint> kept;
    for (auto& p : points) {
      if (param(p.params, "topology") != opts.topology) continue;
      kept.push_back(std::move(p));
    }
    points = std::move(kept);
  }
  if (!opts.plane.empty()) {
    std::vector<runner::RunPoint> kept;
    for (auto& p : points) {
      if (param(p.params, "plane") != opts.plane) continue;
      kept.push_back(std::move(p));
    }
    points = std::move(kept);
  }
  if (points.empty()) {
    std::fprintf(stderr, "no points match the plane/topology filter\n");
    return 2;
  }

  runner::SweepRunner pool(opts.threads);
  print_banner("serving_tail: " + std::to_string(points.size()) + " points (" +
               std::string(opts.reduced ? "reduced" : "full") + ") on " +
               std::to_string(pool.threads()) + " threads");
  const auto results = pool.run(points);

  Table table({"point", "responses", "p50 (us)", "p99 (us)", "p999 (us)",
               "goodput (MB/s)", "net drops", "digest"});
  int failed = 0;
  for (const auto& r : results) {
    table.row().add(r.name);
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAILED %s: %s\n", r.name.c_str(), r.error.c_str());
      table.add("ERROR: " + r.error);
      for (int i = 0; i < 6; ++i) table.skip();
      continue;
    }
    const runner::LatencySummary& l = r.metrics.latency;
    table.add(static_cast<std::int64_t>(l.count))
        .add(static_cast<double>(l.p50_ns) * 1e-3, 1)
        .add(static_cast<double>(l.p99_ns) * 1e-3, 1)
        .add(static_cast<double>(l.p999_ns) * 1e-3, 1)
        .add(static_cast<double>(l.goodput_bytes_per_sec) * 1e-6, 2);
    std::int64_t drops = 0;
    for (const auto& [key, value] : r.metrics.counters) {
      if (key == "net_drops") drops = value;
    }
    table.add(drops).add(runner::digest_hex(r.metrics.digest));
  }
  table.print();

  if (opts.out != "-") {
    runner::BenchJsonMeta meta;
    meta.point_set = opts.reduced ? "reduced" : "full";
    meta.threads = pool.threads();
    meta.sweep_wall_ms = pool.last_sweep_wall_ms();
    std::ofstream out(opts.out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
      return 2;
    }
    runner::write_bench_json(out, results, meta);
    std::printf("wrote %s\n", opts.out.c_str());
  }

  int mismatches = 0;
  if (opts.check_digests) {
    std::puts("\n== digest check: re-running every point serially ==");
    runner::SweepRunner serial_runner(/*threads=*/1);
    const auto serial = serial_runner.run(points);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const auto& a = results[i];
      const auto& b = serial[i];
      const bool same = a.ok == b.ok && a.metrics.digest == b.metrics.digest &&
                        a.metrics.sim_time == b.metrics.sim_time &&
                        a.metrics.counters == b.metrics.counters &&
                        a.metrics.latency.p50_ns == b.metrics.latency.p50_ns &&
                        a.metrics.latency.p99_ns == b.metrics.latency.p99_ns &&
                        a.metrics.latency.p999_ns == b.metrics.latency.p999_ns;
      if (!same) {
        ++mismatches;
        std::fprintf(stderr, "DIGEST MISMATCH %s: pooled %s vs serial %s\n",
                     a.name.c_str(),
                     runner::digest_hex(a.metrics.digest).c_str(),
                     runner::digest_hex(b.metrics.digest).c_str());
      }
    }
    if (mismatches == 0) {
      std::printf("digest check passed: %zu/%zu points reproduce their "
                  "serial digests and percentiles\n",
                  serial.size(), serial.size());
    }
  }

  // The headline gate: under the same conditions the hardware
  // retransmission plane must hold a strictly better p99 than the host's
  // timeout-bound recovery (and no worse on a clean fabric, where both
  // planes are loss-free and the INIC should win on host costs alone).
  int regressions = 0;
  if (opts.plane.empty()) {
    for (const auto& r : results) {
      if (!r.ok || param(r.params, "plane") != "nic") continue;
      const runner::RunRecord* host = matched_host(results, r);
      if (host == nullptr || !host->ok) continue;
      const bool chaos = param(r.params, "chaos") != "clean";
      const std::uint64_t nic_p99 = r.metrics.latency.p99_ns;
      const std::uint64_t host_p99 = host->metrics.latency.p99_ns;
      const bool bad = chaos ? nic_p99 >= host_p99 : nic_p99 > host_p99;
      if (bad) {
        ++regressions;
        std::fprintf(stderr,
                     "TAIL REGRESSION %s: NIC p99 %llu ns vs host %llu ns\n",
                     r.name.c_str(), static_cast<unsigned long long>(nic_p99),
                     static_cast<unsigned long long>(host_p99));
      }
    }
    if (regressions == 0) {
      std::puts("tail check passed: the NIC plane holds a better p99 than "
                "the host plane at every matched point");
    }
  }
  return (failed || mismatches || regressions) ? 1 : 0;
}
