// Extension bench: compute-accelerator mode concurrency (Section 2).
//
// "When using the INIC for compute acceleration, a separate path to
// host memory is configured to allow normal network operations."  This
// bench streams 8 MiB card-to-card while FPGA compute offloads of
// increasing volume run on the sending card, and reports how much the
// network stream slows down — ideal card (separate path) vs ACEII
// prototype (single shared bus).
#include <cstdio>

#include "common/table.hpp"
#include "core/acc.hpp"

using namespace acc;

namespace {

Time stream_time(inic::InicConfig cfg, int offload_rounds) {
  sim::Engine eng;
  net::Network network(eng, 2);
  hw::Node a(eng, 0), b(eng, 1);
  inic::InicCard card_a(a, network, cfg), card_b(b, network, cfg);

  Time delivered = Time::zero();
  sim::ProcessGroup group(eng);
  group.spawn([](inic::InicCard& c) -> sim::Process {
    co_await c.send_stream(1, Bytes::mib(8), 0, std::any{});
  }(card_a));
  group.spawn([](inic::InicCard& c, sim::Engine& e, Time& out) -> sim::Process {
    (void)co_await c.card_inbox().recv();
    out = e.now();
  }(card_b, eng, delivered));
  for (int i = 0; i < offload_rounds; ++i) {
    group.spawn([](inic::InicCard& c) -> sim::Process {
      co_await c.compute_offload(Bytes::mib(8),
                                 Bandwidth::mib_per_sec(1000.0));
    }(card_a));
  }
  group.join();
  return delivered;
}

}  // namespace

int main() {
  print_banner(
      "Extension: compute-accelerator concurrency — 8 MiB stream while the "
      "FPGAs crunch host data");

  Table table({"offload volume", "ideal stream (ms)", "ideal slowdown",
               "prototype stream (ms)", "prototype slowdown"});
  const Time ideal_clean = stream_time(inic::InicConfig::ideal(), 0);
  const Time proto_clean = stream_time(inic::InicConfig::prototype_aceii(), 0);
  for (int rounds : {0, 1, 2, 4}) {
    const Time ideal = stream_time(inic::InicConfig::ideal(), rounds);
    const Time proto =
        stream_time(inic::InicConfig::prototype_aceii(), rounds);
    table.row()
        .add(to_string(Bytes::mib(8) * static_cast<std::uint64_t>(rounds)))
        .add(ideal.as_millis(), 1)
        .add(ideal / ideal_clean, 2)
        .add(proto.as_millis(), 1)
        .add(proto / proto_clean, 2);
  }
  table.print();

  std::puts(
      "\nExpected (paper, Section 2): the ideal card's separate host-memory"
      "\npath keeps the stream at 1.00x under any offload load; the"
      "\nprototype's single shared bus slows networking as compute grows.");
  return 0;
}
