// Collective-backend sweep: the collectives suite on its own —
// quantifying the paper's closing claim that the architecture can
// "accelerate functions ranging from collective operations to MPI
// derived data types".
//
// Each point runs barrier + topology-aware allreduce with one backend:
//   host  the software tree over GigE TCP — every hop pays protocol
//         CPU time and coalesced-interrupt receive latency;
//   nic   the card-resident engine over the ideal INIC — trigger
//         tables forward and combine on the cards, so the host CPU
//         columns must read zero.
// The host-cost split rides in each point's counters (host_cpu_events,
// irq_events, irq_delivered, host_cpu_ns, trigger_fires) feeding the
// acceptance check that the NIC backend strictly beats the host
// backend on CPU events and interrupt deliveries at P >= 16.
//
// Usage:
//   collectives_compare [--threads=N] [--points=full|reduced]
//                       [--backend=host|nic] [--topology=NAME]
//                       [--out=PATH] [--check-digests]
//
// --backend / --topology filter the grid by the matching point params;
// the other flags behave exactly as in bench_all (this grid is also
// reachable via `bench_all --suite=collectives`).  The JSON schema is
// docs/BENCHMARKS.md's v2.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "runner/bench_json.hpp"
#include "runner/bench_points.hpp"
#include "runner/sweep.hpp"

using namespace acc;

namespace {

struct Options {
  std::size_t threads = 0;  // 0 = hardware concurrency
  bool reduced = false;
  bool check_digests = false;
  std::string backend;   // empty = both
  std::string topology;  // empty = every shape
  std::string out = "BENCH_results.json";
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    } else if (arg == "--points=reduced") {
      opts.reduced = true;
    } else if (arg == "--points=full") {
      opts.reduced = false;
    } else if (arg.rfind("--backend=", 0) == 0) {
      opts.backend = arg.substr(10);
      if (opts.backend != "host" && opts.backend != "nic") {
        std::fprintf(stderr, "unknown backend: %s (host|nic)\n",
                     opts.backend.c_str());
        return false;
      }
    } else if (arg.rfind("--topology=", 0) == 0) {
      opts.topology = arg.substr(11);
    } else if (arg.rfind("--out=", 0) == 0) {
      opts.out = arg.substr(6);
    } else if (arg == "--check-digests") {
      opts.check_digests = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string param(const std::vector<std::pair<std::string, std::string>>& ps,
                  const char* name) {
  for (const auto& [key, value] : ps) {
    if (key == name) return value;
  }
  return "";
}

std::int64_t counter(const runner::RunRecord& r, const char* name) {
  for (const auto& [key, value] : r.metrics.counters) {
    if (key == name) return value;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  auto points = runner::collective_points(opts.reduced);
  if (!opts.backend.empty() || !opts.topology.empty()) {
    std::vector<runner::RunPoint> kept;
    for (auto& p : points) {
      if (!opts.backend.empty() &&
          param(p.params, "collective_backend") != opts.backend) {
        continue;
      }
      if (!opts.topology.empty() &&
          param(p.params, "topology") != opts.topology) {
        continue;
      }
      kept.push_back(std::move(p));
    }
    points = std::move(kept);
    if (points.empty()) {
      std::fprintf(stderr, "no points match the backend/topology filter\n");
      return 2;
    }
  }

  runner::SweepRunner pool(opts.threads);
  print_banner("collectives_compare: " + std::to_string(points.size()) +
               " points (" + std::string(opts.reduced ? "reduced" : "full") +
               ") on " + std::to_string(pool.threads()) + " threads");
  const auto results = pool.run(points);

  Table table({"point", "barrier (us)", "allreduce (us)", "cpu events",
               "irq events", "irqs", "host cpu (us)", "trig fires",
               "digest"});
  int failed = 0;
  for (const auto& r : results) {
    table.row().add(r.name);
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAILED %s: %s\n", r.name.c_str(),
                   r.error.c_str());
      table.add("ERROR: " + r.error);
      for (int i = 0; i < 7; ++i) table.skip();
      continue;
    }
    table.add(static_cast<double>(counter(r, "barrier_ns")) * 1e-3, 1)
        .add(static_cast<double>(counter(r, "allreduce_ns")) * 1e-3, 1)
        .add(counter(r, "host_cpu_events"))
        .add(counter(r, "irq_events"))
        .add(counter(r, "irq_delivered"))
        .add(static_cast<double>(counter(r, "host_cpu_ns")) * 1e-3, 1)
        .add(counter(r, "trigger_fires"))
        .add(runner::digest_hex(r.metrics.digest));
  }
  table.print();

  if (opts.out != "-") {
    runner::BenchJsonMeta meta;
    meta.point_set = opts.reduced ? "reduced" : "full";
    meta.threads = pool.threads();
    meta.sweep_wall_ms = pool.last_sweep_wall_ms();
    std::ofstream out(opts.out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
      return 2;
    }
    runner::write_bench_json(out, results, meta);
    std::printf("wrote %s\n", opts.out.c_str());
  }

  int mismatches = 0;
  if (opts.check_digests) {
    std::puts("\n== digest check: re-running every point serially ==");
    runner::SweepRunner serial_runner(/*threads=*/1);
    const auto serial = serial_runner.run(points);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const auto& a = results[i];
      const auto& b = serial[i];
      const bool same = a.ok == b.ok && a.metrics.digest == b.metrics.digest &&
                        a.metrics.sim_time == b.metrics.sim_time &&
                        a.metrics.counters == b.metrics.counters;
      if (!same) {
        ++mismatches;
        std::fprintf(stderr, "DIGEST MISMATCH %s: pooled %s vs serial %s\n",
                     a.name.c_str(),
                     runner::digest_hex(a.metrics.digest).c_str(),
                     runner::digest_hex(b.metrics.digest).c_str());
      }
    }
    if (mismatches == 0) {
      std::printf("digest check passed: %zu/%zu points reproduce their "
                  "serial digests\n",
                  serial.size(), serial.size());
    }
  }

  // NIC-vs-host acceptance: at every grid point present for both
  // backends, the NIC plane must charge strictly fewer host CPU events
  // and interrupt deliveries.
  int regressions = 0;
  for (const auto& nic : results) {
    if (!nic.ok || param(nic.params, "collective_backend") != "nic") continue;
    for (const auto& host : results) {
      if (!host.ok || param(host.params, "collective_backend") != "host") {
        continue;
      }
      if (param(host.params, "topology") != param(nic.params, "topology") ||
          param(host.params, "P") != param(nic.params, "P")) {
        continue;
      }
      const bool wins =
          counter(nic, "host_cpu_events") < counter(host, "host_cpu_events") &&
          counter(nic, "irq_delivered") < counter(host, "irq_delivered");
      if (!wins) {
        ++regressions;
        std::fprintf(stderr,
                     "HOST-COST REGRESSION %s: nic cpu/irq %lld/%lld vs "
                     "host %lld/%lld\n",
                     nic.name.c_str(),
                     static_cast<long long>(counter(nic, "host_cpu_events")),
                     static_cast<long long>(counter(nic, "irq_delivered")),
                     static_cast<long long>(counter(host, "host_cpu_events")),
                     static_cast<long long>(counter(host, "irq_delivered")));
      }
    }
  }
  if (regressions == 0 && opts.backend.empty()) {
    std::puts("host-cost check passed: the NIC backend beats the host "
              "backend on CPU events and interrupt deliveries everywhere");
  }
  return (failed || mismatches || regressions) ? 1 : 0;
}
