// Extension bench: collective-operation latency, host/TCP vs INIC —
// quantifying the paper's closing claim that the architecture can
// "accelerate functions ranging from collective operations to MPI
// derived data types".
//
// Barrier and small allreduce are latency-bound: every tree hop on the
// TCP cluster pays coalesced-interrupt receive latency and slow-started
// sends, while INIC hops are card-to-card.  Large reduce is
// combine-bound: the host adds vectors on the CPU; the INIC adds them in
// the stream.
#include <cstdio>

#include "collectives/collectives.hpp"
#include "common/table.hpp"

using namespace acc;

int main() {
  print_banner("Extension: collective operations, host/TCP vs INIC");

  {
    Table table({"P", "TCP barrier (us)", "INIC barrier (us)", "ratio"});
    for (std::size_t p : {2, 4, 8, 16}) {
      apps::SimCluster tcp(p, apps::Interconnect::kGigabitTcp);
      const auto r_tcp = coll::barrier(tcp);
      apps::SimCluster inic(p, apps::Interconnect::kInicIdeal);
      const auto r_inic = coll::barrier(inic);
      table.row()
          .add(static_cast<std::int64_t>(p))
          .add(r_tcp.total.as_micros(), 1)
          .add(r_inic.total.as_micros(), 1)
          .add(r_tcp.total / r_inic.total, 2);
    }
    table.print();
  }

  {
    std::puts("");
    Table table({"elements", "TCP allreduce (ms)", "INIC allreduce (ms)",
                 "ratio"});
    for (std::size_t elements : {256u, 4096u, 65536u, 1048576u}) {
      apps::SimCluster tcp(8, apps::Interconnect::kGigabitTcp);
      const auto r_tcp = coll::allreduce(tcp, elements);
      apps::SimCluster inic(8, apps::Interconnect::kInicIdeal);
      const auto r_inic = coll::allreduce(inic, elements);
      table.row()
          .add(static_cast<std::int64_t>(elements))
          .add(r_tcp.total.as_millis(), 3)
          .add(r_inic.total.as_millis(), 3)
          .add(r_tcp.total / r_inic.total, 2);
    }
    table.print();
  }

  {
    std::puts("");
    Table table({"P", "TCP alltoall (ms)", "INIC alltoall (ms)", "ratio"});
    for (std::size_t p : {2, 4, 8, 16}) {
      apps::SimCluster tcp(p, apps::Interconnect::kGigabitTcp);
      const auto r_tcp = coll::alltoall(tcp, 1 << 14);
      apps::SimCluster inic(p, apps::Interconnect::kInicIdeal);
      const auto r_inic = coll::alltoall(inic, 1 << 14);
      table.row()
          .add(static_cast<std::int64_t>(p))
          .add(r_tcp.total.as_millis(), 2)
          .add(r_inic.total.as_millis(), 2)
          .add(r_tcp.total / r_inic.total, 2);
    }
    table.print();
  }

  std::puts(
      "\nExpected: INIC wins grow with P for latency-bound collectives"
      "\n(barrier, small allreduce) and with element count for"
      "\ncombine-bound ones (the host pays per-element CPU time).");
  return 0;
}
