// Ablation: two-phase vs one-phase host bucket sort (Section 6).
//
// The prototype's 16-way hardware bucket sorter forces the host to
// refine each coarse bucket into N cache buckets.  The paper remarks:
// "Surprisingly, this can provide higher performance than having the
// host sort directly into 16 x N buckets."  This is a *real hardware*
// measurement (std::chrono on this machine, not simulated time): a
// direct 16N-way distribution thrashes the cache/TLB with 16N active
// output streams, while two passes keep the stream count per pass small.
#include <chrono>
#include <cstdio>

#include "algo/sort.hpp"
#include "common/table.hpp"

using namespace acc;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_of(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double time_one_phase(const std::vector<algo::Key>& keys,
                      std::size_t buckets) {
  auto copy = keys;
  const auto t0 = Clock::now();
  algo::cache_aware_sort(copy, buckets);
  return seconds_of(t0, Clock::now());
}

double time_two_phase(const std::vector<algo::Key>& keys,
                      std::size_t phase1, std::size_t phase2) {
  const auto t0 = Clock::now();
  auto sorted = algo::two_phase_sort(keys, phase1, phase2);
  const double dt = seconds_of(t0, Clock::now());
  if (sorted.size() != keys.size()) std::abort();
  return dt;
}

}  // namespace

int main() {
  print_banner(
      "Ablation: one-phase (16N-way) vs two-phase (16 then N) host bucket "
      "sort, real hardware, 2^22 keys");

  const auto keys = algo::uniform_keys(std::size_t{1} << 22, 2024);

  Table table({"N (phase-2 buckets)", "one-phase 16N-way (ms)",
               "two-phase 16 then N (ms)", "two-phase wins"});
  for (std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    // Warm once, measure best-of-3 to damp scheduler noise.
    double one = 1e9, two = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      one = std::min(one, time_one_phase(keys, 16 * n));
      two = std::min(two, time_two_phase(keys, 16, n));
    }
    table.row()
        .add(static_cast<std::int64_t>(n))
        .add(one * 1e3, 1)
        .add(two * 1e3, 1)
        .add(two < one ? "yes" : "no");
  }
  table.print();

  std::puts(
      "\nExpected (paper, Section 6): the two-phase refinement is"
      "\ncompetitive with or faster than the direct 16N-way distribution"
      "\nonce 16N active output streams exceed the cache/TLB.");
  return 0;
}
