// Figure 4(b): decomposition of transpose time vs. partition size,
// 512x512 matrix, P = 1..16.
//
// Series (as the paper plots): Gigabit-NIC transpose communication time,
// Gigabit-NIC transpose compute time (host local transpose + final
// permutation), INIC transpose time (analytic, Equation 10), and the
// partition size (Equation 5) on the right axis.
#include <cstdio>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "model/fft_model.hpp"

using namespace acc;

int main() {
  print_banner(
      "Figure 4(b): 512x512 transpose decomposition vs partition size");

  model::FftAnalyticModel fft_model;
  const std::size_t n = 512;

  Table table({"P", "NIC comm (ms)", "NIC compute (ms)", "INIC trans (ms)",
               "partition (KB)"});
  for (std::size_t p = 1; p <= 16; ++p) {
    if (n % p != 0) continue;
    const Time host_compute = fft_model.host_transpose_compute_time(n, p);
    const Time inic = fft_model.inic_transpose_time(n, p);
    const Bytes partition = fft_model.partition_size(n, p);

    // Gigabit Ethernet: simulated run; comm = transpose phase minus the
    // host data-manipulation component.
    const auto gige = core::fft_point(apps::Interconnect::kGigabitTcp, n, p);
    const Time comm = p == 1 ? Time::zero() : gige.transpose - host_compute;

    table.row()
        .add(static_cast<std::int64_t>(p))
        .add(comm.as_millis(), 2)
        .add(host_compute.as_millis(), 2)
        .add(inic.as_millis(), 2)
        .add(partition.as_kib(), 1);
  }
  table.print();

  std::puts(
      "\nExpected shape (paper): partition size falls faster than NIC comm"
      "\ntime (TCP overheads dominate small transfers); INIC transpose"
      "\ntracks the partition size down.");
  return 0;
}
