// Figure 8(b): integer-sort parallel speedup, prototype INIC vs Gigabit
// Ethernet (both simulated), E_init = 2^25 keys.
//
// The prototype INIC "can not achieve the full potential of the INIC,
// limited both by the bus bandwidth on the card and the need to perform
// a second stage bucket sort on the receiving host" — both deficiencies
// are active in the kInicPrototype configuration.
#include <cstdio>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "model/sort_model.hpp"

using namespace acc;

int main() {
  print_banner("Figure 8(b): integer sort speedup, prototype INIC vs GigE (simulated)");

  const std::size_t keys = std::size_t{1} << 25;
  model::SortAnalyticModel sort_model;
  const Time serial = sort_model.serial_time(keys);

  Table table({"P", "Prototype INIC", "GigE", "(ideal INIC)"});
  for (std::size_t p : {1, 2, 4, 8, 16}) {
    const auto proto =
        core::sort_point(apps::Interconnect::kInicPrototype, keys, p);
    const auto gige =
        core::sort_point(apps::Interconnect::kGigabitTcp, keys, p);
    const auto ideal =
        core::sort_point(apps::Interconnect::kInicIdeal, keys, p);
    table.row()
        .add(static_cast<std::int64_t>(p))
        .add(serial / proto.total, 2)
        .add(serial / gige.total, 2)
        .add(serial / ideal.total, 2);
  }
  table.print();

  std::puts(
      "\nExpected shape (paper): prototype INIC well above GigE (still"
      "\nsuperlinear at moderate P) but below the ideal INIC of Fig 5(b).");
  return 0;
}
