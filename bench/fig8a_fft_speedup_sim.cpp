// Figure 8(a): 2D-FFT parallel speedup on three interconnect
// technologies — Fast Ethernet, Gigabit Ethernet, and the prototype
// Intelligent NIC — for 256x256 and 512x512 matrices.
//
// In the paper these are testbed measurements (with the INIC numbers
// being conservative estimates from measured component bandwidths); here
// all three come from the discrete-event simulator, with the prototype
// INIC configured with the ACEII deficiencies (shared 132 MB/s card
// bus).
#include <cstdio>

#include "common/table.hpp"
#include "core/experiment.hpp"

using namespace acc;

int main() {
  print_banner("Figure 8(a): 2D-FFT speedup on Fast Ethernet / GigE / prototype INIC (simulated)");

  Table table({"P", "ProtoINIC 256", "ProtoINIC 512", "FastE 256",
               "FastE 512", "GigE 256", "GigE 512"});

  const std::vector<apps::Interconnect> interconnects = {
      apps::Interconnect::kInicPrototype,
      apps::Interconnect::kFastEthernetTcp,
      apps::Interconnect::kGigabitTcp,
  };

  for (std::size_t p : {1, 2, 4, 8, 16}) {
    table.row().add(static_cast<std::int64_t>(p));
    for (auto ic : interconnects) {
      for (std::size_t n : {std::size_t{256}, std::size_t{512}}) {
        // Memoized: the serial baseline depends only on n, so the sweep
        // computes it once per matrix size, not once per cell.
        const Time serial = core::serial_fft_total(n);
        const auto point = core::fft_point(ic, n, p);
        table.add(serial / point.total, 2);
      }
    }
  }
  table.print();

  std::puts(
      "\nExpected shape (paper): Fast Ethernet needs ~8 nodes to beat one"
      "\nprocessor and barely doubles it at 14; GigE reaches ~2-4x; the"
      "\nprototype INIC clearly beats both on the same network hardware.");
  return 0;
}
