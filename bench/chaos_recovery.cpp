// Recovery-cost sweep: how much simulated time each class of injected
// fault adds to the distributed FFT and sort on an INIC cluster, with
// hardware go-back-N and the degraded-mode TCP fallback enabled.
//
// One point per (app, fault scenario); every run verifies its result,
// so the table also certifies that recovery is correct, not just that
// it terminates.  The grid lives in runner::chaos_recovery_points and
// executes on the SweepRunner pool, emitting the same schema-v2
// BENCH_results.json as the other sweep drivers (it also rides in
// bench_all's full sweep as the chaos_recovery suite).
//
// Usage:
//   chaos_recovery [--threads=N] [--points=full|reduced]
//                  [--out=PATH] [--check-digests]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "runner/bench_json.hpp"
#include "runner/bench_points.hpp"
#include "runner/sweep.hpp"

using namespace acc;

namespace {

struct Options {
  std::size_t threads = 0;  // 0 = hardware concurrency
  bool reduced = false;
  bool check_digests = false;
  std::string out = "BENCH_results.json";
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    } else if (arg == "--points=reduced") {
      opts.reduced = true;
    } else if (arg == "--points=full") {
      opts.reduced = false;
    } else if (arg.rfind("--out=", 0) == 0) {
      opts.out = arg.substr(6);
    } else if (arg == "--check-digests") {
      opts.check_digests = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::int64_t counter(const runner::RunRecord& r, const char* name) {
  for (const auto& [key, value] : r.metrics.counters) {
    if (key == name) return value;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  const auto points = runner::chaos_recovery_points(opts.reduced);
  runner::SweepRunner pool(opts.threads);
  print_banner("chaos_recovery: " + std::to_string(points.size()) +
               " points (" + std::string(opts.reduced ? "reduced" : "full") +
               ") on " + std::to_string(pool.threads()) + " threads");
  const auto results = pool.run(points);

  Table table({"point", "clean (ms)", "faulted (ms)", "slowdown",
               "fallback", "retransmits", "crc drops", "digest"});
  int failed = 0;
  for (const auto& r : results) {
    table.row().add(r.name);
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAILED %s: %s\n", r.name.c_str(),
                   r.error.c_str());
      table.add("ERROR: " + r.error);
      for (int i = 0; i < 6; ++i) table.skip();
      continue;
    }
    const double clean_ns = static_cast<double>(counter(r, "clean_ns"));
    const double faulted_ns = static_cast<double>(counter(r, "faulted_ns"));
    table.add(clean_ns * 1e-6, 3)
        .add(faulted_ns * 1e-6, 3)
        .add(clean_ns > 0 ? faulted_ns / clean_ns : 0.0, 2)
        .add(counter(r, "fallback_transfers"))
        .add(counter(r, "retransmits"))
        .add(counter(r, "crc_drops"))
        .add(runner::digest_hex(r.metrics.digest));
  }
  table.print();

  if (opts.out != "-") {
    runner::BenchJsonMeta meta;
    meta.point_set = opts.reduced ? "reduced" : "full";
    meta.threads = pool.threads();
    meta.sweep_wall_ms = pool.last_sweep_wall_ms();
    std::ofstream out(opts.out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
      return 2;
    }
    runner::write_bench_json(out, results, meta);
    std::printf("wrote %s\n", opts.out.c_str());
  }

  int mismatches = 0;
  if (opts.check_digests) {
    std::puts("\n== digest check: re-running every point serially ==");
    runner::SweepRunner serial_runner(/*threads=*/1);
    const auto serial = serial_runner.run(points);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const auto& a = results[i];
      const auto& b = serial[i];
      const bool same = a.ok == b.ok && a.metrics.digest == b.metrics.digest &&
                        a.metrics.sim_time == b.metrics.sim_time &&
                        a.metrics.counters == b.metrics.counters;
      if (!same) {
        ++mismatches;
        std::fprintf(stderr, "DIGEST MISMATCH %s: pooled %s vs serial %s\n",
                     a.name.c_str(),
                     runner::digest_hex(a.metrics.digest).c_str(),
                     runner::digest_hex(b.metrics.digest).c_str());
      }
    }
    if (mismatches == 0) {
      std::printf("digest check passed: %zu/%zu points reproduce their "
                  "serial digests\n",
                  serial.size(), serial.size());
    }
  }

  return (failed || mismatches) ? 1 : 0;
}
