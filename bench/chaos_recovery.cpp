// Recovery-cost bench: how much simulated time each class of injected
// fault adds to the distributed FFT and sort on an INIC cluster, with
// hardware go-back-N and the degraded-mode TCP fallback enabled.
//
// One row per fault scenario, one column per application; every run
// verifies its result, so the table also certifies that recovery is
// correct, not just that it terminates.
#include <cstdio>

#include "core/acc.hpp"

using namespace acc;

namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kFftN = 256;
constexpr std::size_t kSortKeys = std::size_t{1} << 16;

apps::ClusterOptions hardened_options() {
  apps::ClusterOptions opts;
  opts.inic_hw_retransmit = true;
  opts.inic_max_retries = 16;
  opts.degraded_fallback = true;
  return opts;
}

apps::SimCluster make_cluster() {
  return apps::SimCluster(kNodes, apps::Interconnect::kInicIdeal,
                          model::default_calibration(), hardened_options());
}

struct Scenario {
  const char* name;
  // Builds the plan from the clean-run duration of the app under test.
  fault::FaultPlan (*plan)(Time clean);
};

fault::FaultPlan plan_none(Time) { return {}; }

fault::FaultPlan plan_burst_loss(Time clean) {
  fault::GilbertElliottParams ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.25;
  ge.loss_bad = 0.5;
  fault::FaultPlan plan;
  plan.with_burst_loss(clean * 0.05, clean * 3.0, ge);
  return plan;
}

fault::FaultPlan plan_corruption(Time clean) {
  fault::FaultPlan plan;
  plan.with_corruption(clean * 0.05, clean * 3.0, 0.05);
  return plan;
}

fault::FaultPlan plan_link_flap(Time clean) {
  fault::FaultPlan plan;
  plan.with_link_down(1, clean * 0.30, clean * 0.05);
  return plan;
}

fault::FaultPlan plan_card_reset(Time clean) {
  fault::FaultPlan plan;
  plan.with_card_reset(2, clean * 0.10, clean * 0.25);
  return plan;
}

fault::FaultPlan plan_slow_port(Time clean) {
  fault::FaultPlan plan;
  plan.with_port_degrade(1, clean * 0.10, clean * 0.60, /*rate_factor=*/0.1);
  return plan;
}

fault::FaultPlan plan_everything(Time clean) {
  fault::FaultPlan plan = plan_burst_loss(clean);
  plan.with_corruption(clean * 0.05, clean * 3.0, 0.05)
      .with_link_down(1, clean * 0.40, clean * 0.05)
      .with_card_reset(2, clean * 0.10, clean * 0.25);
  return plan;
}

constexpr Scenario kScenarios[] = {
    {"clean", plan_none},
    {"bursty loss (~10%)", plan_burst_loss},
    {"corruption (5%)", plan_corruption},
    {"link flap (5% of run)", plan_link_flap},
    {"card reset (25% of run)", plan_card_reset},
    {"port at 10% rate", plan_slow_port},
    {"all of the above", plan_everything},
};

Time run_fft(const fault::FaultPlan& plan, bool* ok) {
  apps::SimCluster cluster = make_cluster();
  cluster.engine().set_time_budget(Time::seconds(30));
  fault::FaultInjector injector(cluster, plan);
  apps::FftRunOptions opts;
  opts.verify = true;
  const auto r = run_parallel_fft(cluster, kFftN, opts);
  *ok = r.verified;
  return r.total;
}

Time run_sort(const fault::FaultPlan& plan, bool* ok) {
  apps::SimCluster cluster = make_cluster();
  cluster.engine().set_time_budget(Time::seconds(30));
  fault::FaultInjector injector(cluster, plan);
  apps::SortRunOptions opts;
  opts.verify = true;
  const auto r = run_parallel_sort(cluster, kSortKeys, opts);
  *ok = r.verified;
  return r.total;
}

}  // namespace

int main() {
  print_banner("Recovery cost under injected faults (INIC, hardened)");
  std::printf("%zu nodes, FFT %zux%zu, sort %zu keys; every cell verified\n\n",
              kNodes, kFftN, kFftN, kSortKeys);

  bool ok = true;
  const Time fft_clean = run_fft({}, &ok);
  const Time sort_clean = run_sort({}, &ok);

  Table table({"scenario", "fft ms", "fft slowdown", "sort ms",
               "sort slowdown", "result"});
  bool all_ok = true;
  for (const Scenario& s : kScenarios) {
    bool fft_ok = false, sort_ok = false;
    const Time fft_t = run_fft(s.plan(fft_clean), &fft_ok);
    const Time sort_t = run_sort(s.plan(sort_clean), &sort_ok);
    all_ok = all_ok && fft_ok && sort_ok;
    table.row()
        .add(s.name)
        .add(fft_t.as_millis(), 3)
        .add(fft_t.as_seconds() / fft_clean.as_seconds(), 2)
        .add(sort_t.as_millis(), 3)
        .add(sort_t.as_seconds() / sort_clean.as_seconds(), 2)
        .add(fft_ok && sort_ok ? "verified" : "WRONG");
  }
  table.print();
  return all_ok ? 0 : 1;
}
