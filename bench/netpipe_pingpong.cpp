// Extension bench: NetPIPE-style point-to-point latency/bandwidth sweep
// over message size — the protocol-processor mode of Section 2 ("higher
// bandwidth and lower latency than current commodity network
// subsystems") made quantitative.
//
// For each message size: one-way delivery latency and the effective
// goodput of a long unidirectional stream, on TCP/GigE vs INIC.
#include <cstdio>

#include "common/table.hpp"
#include "core/acc.hpp"

using namespace acc;

namespace {

struct PointToPoint {
  Time latency;      // first-message one-way delay
  double goodput;    // bytes/s over an 8-message stream
};

PointToPoint measure(apps::Interconnect ic, Bytes size) {
  apps::SimCluster cluster(2, ic);
  std::vector<Time> deliveries;
  constexpr int kMessages = 8;

  sim::ProcessGroup group(cluster.engine());
  if (apps::is_inic(ic)) {
    group.spawn([](apps::SimCluster& c, Bytes sz) -> sim::Process {
      for (int m = 0; m < kMessages; ++m) {
        co_await c.card(0).send_stream(1, sz, static_cast<std::uint64_t>(m),
                                       std::any{});
      }
    }(cluster, size));
    group.spawn([](apps::SimCluster& c, std::vector<Time>& out) -> sim::Process {
      for (int m = 0; m < kMessages; ++m) {
        auto msg = co_await c.card(1).card_inbox().recv();
        out.push_back(msg.delivered_at);
      }
    }(cluster, deliveries));
  } else {
    group.spawn([](apps::SimCluster& c, Bytes sz) -> sim::Process {
      for (int m = 0; m < kMessages; ++m) {
        co_await c.tcp(0).send_message(1, sz, static_cast<std::uint64_t>(m),
                                       std::any{});
      }
    }(cluster, size));
    group.spawn([](apps::SimCluster& c, std::vector<Time>& out) -> sim::Process {
      for (int m = 0; m < kMessages; ++m) {
        auto msg = co_await c.tcp(1).inbox().recv();
        out.push_back(msg.delivered_at);
      }
    }(cluster, deliveries));
  }
  group.join();

  PointToPoint result;
  result.latency = deliveries.front();
  result.goodput = static_cast<double>(size.count()) * kMessages /
                   deliveries.back().as_seconds();
  return result;
}

}  // namespace

int main() {
  print_banner("Extension: NetPIPE-style point-to-point sweep, TCP/GigE vs INIC");

  Table table({"size", "TCP lat (us)", "INIC lat (us)", "TCP goodput (MiB/s)",
               "INIC goodput (MiB/s)"});
  for (std::uint64_t size :
       {64ull, 1024ull, 16384ull, 262144ull, 4194304ull}) {
    const auto tcp = measure(apps::Interconnect::kGigabitTcp, Bytes(size));
    const auto inic = measure(apps::Interconnect::kInicIdeal, Bytes(size));
    table.row()
        .add(to_string(Bytes(size)))
        .add(tcp.latency.as_micros(), 1)
        .add(inic.latency.as_micros(), 1)
        .add(tcp.goodput / (1024.0 * 1024.0), 1)
        .add(inic.goodput / (1024.0 * 1024.0), 1);
  }
  table.print();

  std::puts(
      "\nExpected: INIC small-message latency is dominated by wire+card"
      "\ntime (no interrupt coalescing wait, no slow start); TCP goodput"
      "\napproaches the INIC's only for multi-MB transfers.");
  return 0;
}
