// Topology scaling sweep: the fig_scaling_topology suite on its own.
//
// Runs barrier + topology-aware broadcast/reduce (collectives.hpp) over
// star, fat-tree, and torus fabrics (net/topology.hpp) at 64/256/1024
// nodes, through the parallel SweepRunner, and reports per-link
// congestion alongside the usual digest/time columns.  The full grid's
// 1024-node fat-tree (k=16) and 3-D torus (8x8x16) points are the
// largest simulated fabrics in the repo; --points=reduced keeps
// P <= 256 for CI.
//
// Usage:
//   fig_scaling_topology [--threads=N] [--points=full|reduced]
//                        [--out=PATH] [--check-digests]
//
// Flags behave exactly as in bench_all (this grid is also reachable via
// `bench_all --suite=fig_scaling_topology`).  The JSON schema is
// docs/BENCHMARKS.md's v2; the per-link congestion summary rides in each
// point's counters (switches, interior_links, link_frames_total,
// link_frames_max, link_peak_queue_max_bytes, frames_forwarded,
// frames_dropped).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "runner/bench_json.hpp"
#include "runner/bench_points.hpp"
#include "runner/sweep.hpp"

using namespace acc;

namespace {

struct Options {
  std::size_t threads = 0;  // 0 = hardware concurrency
  bool reduced = false;
  bool check_digests = false;
  std::string out = "BENCH_results.json";
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    } else if (arg == "--points=reduced") {
      opts.reduced = true;
    } else if (arg == "--points=full") {
      opts.reduced = false;
    } else if (arg.rfind("--out=", 0) == 0) {
      opts.out = arg.substr(6);
    } else if (arg == "--check-digests") {
      opts.check_digests = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::int64_t counter(const runner::RunRecord& r, const char* name) {
  for (const auto& [key, value] : r.metrics.counters) {
    if (key == name) return value;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  const auto points = runner::topology_scaling_points(opts.reduced);
  runner::SweepRunner pool(opts.threads);
  print_banner("fig_scaling_topology: " + std::to_string(points.size()) +
               " points (" + std::string(opts.reduced ? "reduced" : "full") +
               ") on " + std::to_string(pool.threads()) + " threads");
  const auto results = pool.run(points);

  Table table({"point", "shape", "sim (ms)", "switches", "links",
               "link frames", "max/link", "peak queue (B)", "drops",
               "digest"});
  int failed = 0;
  for (const auto& r : results) {
    table.row().add(r.name);
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAILED %s: %s\n", r.name.c_str(),
                   r.error.c_str());
      table.add("ERROR: " + r.error);
      for (int i = 0; i < 8; ++i) table.skip();
      continue;
    }
    std::string shape;
    for (const auto& [key, value] : r.params) {
      if (key == "shape") shape = value;
    }
    table.add(shape)
        .add(r.metrics.sim_time.as_millis(), 2)
        .add(counter(r, "switches"))
        .add(counter(r, "interior_links"))
        .add(counter(r, "link_frames_total"))
        .add(counter(r, "link_frames_max"))
        .add(counter(r, "link_peak_queue_max_bytes"))
        .add(counter(r, "frames_dropped"))
        .add(runner::digest_hex(r.metrics.digest));
  }
  table.print();

  if (opts.out != "-") {
    runner::BenchJsonMeta meta;
    meta.point_set = opts.reduced ? "reduced" : "full";
    meta.threads = pool.threads();
    meta.sweep_wall_ms = pool.last_sweep_wall_ms();
    std::ofstream out(opts.out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
      return 2;
    }
    runner::write_bench_json(out, results, meta);
    std::printf("wrote %s\n", opts.out.c_str());
  }

  int mismatches = 0;
  if (opts.check_digests) {
    std::puts("\n== digest check: re-running every point serially ==");
    runner::SweepRunner serial_runner(/*threads=*/1);
    const auto serial = serial_runner.run(points);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const auto& a = results[i];
      const auto& b = serial[i];
      const bool same = a.ok == b.ok && a.metrics.digest == b.metrics.digest &&
                        a.metrics.sim_time == b.metrics.sim_time &&
                        a.metrics.counters == b.metrics.counters;
      if (!same) {
        ++mismatches;
        std::fprintf(stderr, "DIGEST MISMATCH %s: pooled %s vs serial %s\n",
                     a.name.c_str(),
                     runner::digest_hex(a.metrics.digest).c_str(),
                     runner::digest_hex(b.metrics.digest).c_str());
      }
    }
    if (mismatches == 0) {
      std::printf("digest check passed: %zu/%zu points reproduce their "
                  "serial digests\n",
                  serial.size(), serial.size());
    }
  }
  return (failed || mismatches) ? 1 : 0;
}
