// Extension bench: MPI derived datatypes — host pack+send vs INIC
// in-stream gather (Section 8's "MPI derived data types").
//
// Workload: send one column-block of a row-major matrix (the exact
// gather the FFT transpose performs).  Host path: pack the strided
// layout on the CPU (strided pass + per-block overhead), then send the
// contiguous buffer over TCP.  INIC path: the card's address generator
// gathers the blocks during the host->card DMA — no host compute at all.
#include <cstdio>

#include "common/table.hpp"
#include "core/acc.hpp"
#include "dtype/datatype.hpp"

using namespace acc;

namespace {

Time run_host_pack_send(const dtype::Datatype& type) {
  apps::SimCluster cluster(2, apps::Interconnect::kGigabitTcp);
  sim::ProcessGroup group(cluster.engine());
  group.spawn([](apps::SimCluster& c, const dtype::Datatype& t) -> sim::Process {
    co_await c.node(0).cpu().compute(
        dtype::host_pack_time(c.node(0).cpu().memory(), t));
    co_await c.tcp(0).send_message(1, t.packed_size(), 0, std::any{});
  }(cluster, type));
  group.spawn([](apps::SimCluster& c) -> sim::Process {
    (void)co_await c.tcp(1).inbox().recv();
  }(cluster));
  return group.join();
}

Time run_inic_gather_send(const dtype::Datatype& type) {
  apps::SimCluster cluster(2, apps::Interconnect::kInicIdeal);
  sim::ProcessGroup group(cluster.engine());
  group.spawn([](apps::SimCluster& c, const dtype::Datatype& t) -> sim::Process {
    // The gather happens in the card's datapath during the stream.
    co_await c.card(0).send_stream(1, t.packed_size(), 0, std::any{});
  }(cluster, type));
  group.spawn([](apps::SimCluster& c) -> sim::Process {
    (void)co_await c.card(1).card_inbox().recv();
  }(cluster));
  return group.join();
}

}  // namespace

int main() {
  print_banner(
      "Extension: derived-datatype send — host pack+TCP vs INIC in-stream "
      "gather");

  // Column blocks of an n x n complex-double matrix: n blocks of
  // width*16 bytes, stride n*16 (width = n/8 columns).
  Table table({"matrix", "payload", "blocks", "host pack (ms)",
               "host total (ms)", "INIC total (ms)", "INIC win"});
  for (std::size_t n : {128u, 256u, 512u, 1024u}) {
    const std::size_t width = n / 8;
    const auto type = dtype::Datatype::vector(n, width * 16, n * 16);
    hw::MemoryHierarchy mem;
    const Time pack = dtype::host_pack_time(mem, type);
    const Time host = run_host_pack_send(type);
    const Time inic = run_inic_gather_send(type);
    table.row()
        .add(std::to_string(n) + "x" + std::to_string(n))
        .add(to_string(type.packed_size()))
        .add(static_cast<std::int64_t>(type.block_count()))
        .add(pack.as_millis(), 2)
        .add(host.as_millis(), 2)
        .add(inic.as_millis(), 2)
        .add(host / inic, 2);
  }
  table.print();

  std::puts(
      "\nExpected: the host pays a strided pack pass that grows with the"
      "\nmatrix (and falls off the cache); the INIC gathers in-stream, so"
      "\nits cost is pure transfer time.");
  return 0;
}
