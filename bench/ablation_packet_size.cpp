// Ablation: INIC protocol packet size (Section 4.2).
//
// The paper argues a 1024-byte packet is "reasonable" because the INIC
// protocol "eliminates interrupts and does not involve a shared bus
// between the NIC and the reconfigurable logic, [so] there is no
// particular incentive to maximize the packet size."  This sweep runs
// the full INIC integer sort with packet sizes from 256 B to 4 KiB and
// shows the total time is nearly flat — unlike TCP, where packet
// (segment) size strongly matters through per-packet host costs.
#include <cstdio>

#include "common/table.hpp"
#include "core/experiment.hpp"

using namespace acc;

int main() {
  print_banner("Ablation: INIC packet size vs integer-sort time (P = 8, 2^24 keys)");

  const std::size_t keys = std::size_t{1} << 24;
  const std::size_t p = 8;

  Table table({"packet (B)", "sort total (ms)", "redistribution (ms)",
               "overhead bytes/packet"});
  for (std::uint64_t packet : {256u, 512u, 1024u, 2048u, 4096u}) {
    model::Calibration cal = model::default_calibration();
    cal.inic_packet = Bytes(packet);
    apps::SimCluster cluster(p, apps::Interconnect::kInicIdeal, cal);
    apps::SortRunOptions opts;
    opts.verify = false;
    const auto r = run_parallel_sort(cluster, keys, opts);
    table.row()
        .add(static_cast<std::int64_t>(packet))
        .add(r.total.as_millis(), 1)
        .add(r.redistribution.as_millis(), 1)
        .add(std::int64_t{46});
  }
  table.print();

  std::puts(
      "\nExpected: nearly flat across packet sizes (only framing overhead"
      "\nchanges) — the paper's 'no particular incentive to maximize the"
      "\npacket size'.");
  return 0;
}
