// Ablation: interrupt-mitigation policy on the TCP/Gigabit baseline
// (Section 4.1).
//
// "High speed network interfaces typically use some form of interrupt
// mitigation — based on a time-out or number of messages received...
// but it interacts poorly with TCP slow-start for short messages."
// This sweep runs the Gigabit FFT transpose under different coalescing
// policies: aggressive batching helps big streams but hurts the
// latency-bound transpose exchanges; per-packet interrupts melt the CPU.
// There is no good setting — which is the paper's point: the INIC
// removes the trade-off entirely.
#include <cstdio>

#include "common/table.hpp"
#include "core/experiment.hpp"

using namespace acc;

int main() {
  print_banner(
      "Ablation: interrupt coalescing policy vs GigE FFT time (512x512, P = 8)");

  struct Policy {
    const char* name;
    std::size_t frames;
    Time timeout;
  };
  const Policy policies[] = {
      {"per-packet (no mitigation)", 1, Time::micros(1)},
      {"mild (4 frames / 50 us)", 4, Time::micros(50)},
      {"default (16 frames / 400 us)", 16, Time::micros(400)},
      {"aggressive (64 frames / 1 ms)", 64, Time::millis(1)},
  };

  Table table({"policy", "FFT total (ms)", "transpose (ms)",
               "interrupts/node", "intr CPU (ms)"});
  for (const Policy& pol : policies) {
    model::Calibration cal = model::default_calibration();
    cal.interrupt_coalesce_frames = pol.frames;
    cal.interrupt_coalesce_timeout = pol.timeout;
    apps::SimCluster cluster(8, apps::Interconnect::kGigabitTcp, cal);
    apps::FftRunOptions opts;
    opts.verify = false;
    const auto r = run_parallel_fft(cluster, 512, opts);
    table.row()
        .add(pol.name)
        .add(r.total.as_millis(), 1)
        .add(r.transpose.as_millis(), 1)
        .add(static_cast<std::int64_t>(cluster.node(0).cpu().interrupts_serviced()))
        .add(cluster.node(0).cpu().total_interrupt_time().as_millis(), 2);
  }
  table.print();

  std::puts(
      "\nExpected: per-packet interrupts maximize CPU interrupt load;"
      "\naggressive coalescing inflates transpose latency.  The INIC"
      "\n(fig4b/fig8a benches) avoids the trade-off: zero interrupts.");
  return 0;
}
