// Ablation: key distribution and the sampling pre-sort phase
// (Section 3.2's caveat: uniform keys are "not a realistic assumption...
// sampling in a pre-sort phase helps address the shortcomings... by
// leading to a more balanced workload").
//
// Parallel integer sort on the ideal INIC under uniform vs Gaussian keys
// (two widths), with and without sampling-based splitters.  Skew
// concentrates the redistribution onto a few nodes; splitters restore
// the balance.
#include <cstdio>

#include "common/table.hpp"
#include "core/acc.hpp"

using namespace acc;

namespace {

Time run(apps::KeyDistribution dist, double sigma, bool sampling) {
  apps::SimCluster cluster(8, apps::Interconnect::kInicIdeal);
  apps::SortRunOptions opts;
  opts.verify = false;
  opts.distribution = dist;
  opts.gaussian_sigma = sigma;
  opts.sampling_splitters = sampling;
  return run_parallel_sort(cluster, std::size_t{1} << 22, opts).total;
}

}  // namespace

int main() {
  print_banner(
      "Ablation: key distribution x sampling pre-sort (INIC sort, P = 8, "
      "2^22 keys)");

  struct Row {
    const char* name;
    apps::KeyDistribution dist;
    double sigma;
  };
  const Row rows[] = {
      {"uniform", apps::KeyDistribution::kUniform, 0.0},
      {"gaussian sigma=2^29", apps::KeyDistribution::kGaussian,
       static_cast<double>(1u << 29)},
      {"gaussian sigma=2^27", apps::KeyDistribution::kGaussian,
       static_cast<double>(1u << 27)},
  };

  Table table({"distribution", "top-bit buckets (ms)",
               "sampled splitters (ms)", "sampling win"});
  for (const Row& row : rows) {
    const Time plain = run(row.dist, row.sigma, false);
    const Time sampled = run(row.dist, row.sigma, true);
    table.row()
        .add(row.name)
        .add(plain.as_millis(), 1)
        .add(sampled.as_millis(), 1)
        .add(plain / sampled, 2);
  }
  table.print();

  std::puts(
      "\nExpected: near-1.0 win for uniform keys (the paper's assumption"
      "\nneeds no sampling); growing wins as the distribution narrows and"
      "\ntop-bit bucketing overloads the middle nodes.");
  return 0;
}
