// Figure 5(a): component times of the serialized parallel integer sort
// on Gigabit Ethernet vs. number of processors, with partition size on
// the right axis.  E_init = 2^25 uniform 32-bit keys.
//
// Series: count-sort time, phase-1 bucket-sort time, phase-2 bucket-sort
// time, communication time (all simulated on the TCP/GigE cluster), and
// partition size (Equation 12).
#include <cstdio>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "model/sort_model.hpp"

using namespace acc;

int main() {
  print_banner("Figure 5(a): integer sort component times (Gigabit Ethernet)");

  const std::size_t keys = std::size_t{1} << 25;
  model::SortAnalyticModel sort_model;

  Table table({"P", "count sort (ms)", "phase1 bucket (ms)",
               "phase2 bucket (ms)", "comm (ms)", "partition (KB)"});
  for (std::size_t p : {1, 2, 4, 8, 16}) {
    const auto r = core::sort_point(apps::Interconnect::kGigabitTcp, keys, p);
    const Time comm =
        r.total - r.count_sort - r.bucket_phase1 - r.bucket_phase2;
    table.row()
        .add(static_cast<std::int64_t>(p))
        .add(r.count_sort.as_millis(), 1)
        .add(r.bucket_phase1.as_millis(), 1)
        .add(r.bucket_phase2.as_millis(), 1)
        .add((p == 1 ? Time::zero() : comm).as_millis(), 1)
        .add(sort_model.partition_size(keys, p).as_kib(), 0);
  }
  table.print();

  std::puts(
      "\nExpected shape (paper): sort phases scale down ~1/P with the"
      "\npartition; communication time scales worse than partition size.");
  return 0;
}
