// Failover-recovery sweep: permanent interior-link cuts against live
// collectives on multi-hop fabrics with fault-aware adaptive routing on
// and the degraded TCP fallback OFF — the fabric's re-convergence plus
// the go-back-N reroute escalation must carry every run.
//
// Each point reports:
//   recovery (us)   first cut -> the fabric's re-convergence instant
//   goodput (MB/s)  a 256 KiB bulk transfer timed over the re-converged
//                   route, after the collectives complete
//   epochs/grants   route re-convergences and reroute grants the run took
// A point fails (non-zero exit) if a collective fails verification or
// any card writes a peer off as unreachable — failover means nobody is
// given up on.
//
// Usage:
//   failover_recovery [--threads=N] [--points=full|reduced]
//                     [--backend=host|nic] [--topology=NAME]
//                     [--out=PATH] [--check-digests]
//
// Flags behave as in bench_all / collectives_compare; the JSON schema is
// docs/BENCHMARKS.md's v2.  This grid also rides in bench_all's full
// sweep as the failover_recovery suite.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "runner/bench_json.hpp"
#include "runner/bench_points.hpp"
#include "runner/sweep.hpp"

using namespace acc;

namespace {

struct Options {
  std::size_t threads = 0;  // 0 = hardware concurrency
  bool reduced = false;
  bool check_digests = false;
  std::string backend;   // empty = both
  std::string topology;  // empty = every shape
  std::string out = "BENCH_results.json";
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    } else if (arg == "--points=reduced") {
      opts.reduced = true;
    } else if (arg == "--points=full") {
      opts.reduced = false;
    } else if (arg.rfind("--backend=", 0) == 0) {
      opts.backend = arg.substr(10);
      if (opts.backend != "host" && opts.backend != "nic") {
        std::fprintf(stderr, "unknown backend: %s (host|nic)\n",
                     opts.backend.c_str());
        return false;
      }
    } else if (arg.rfind("--topology=", 0) == 0) {
      opts.topology = arg.substr(11);
    } else if (arg.rfind("--out=", 0) == 0) {
      opts.out = arg.substr(6);
    } else if (arg == "--check-digests") {
      opts.check_digests = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string param(const std::vector<std::pair<std::string, std::string>>& ps,
                  const char* name) {
  for (const auto& [key, value] : ps) {
    if (key == name) return value;
  }
  return "";
}

std::int64_t counter(const runner::RunRecord& r, const char* name) {
  for (const auto& [key, value] : r.metrics.counters) {
    if (key == name) return value;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  auto points = runner::failover_points(opts.reduced);
  if (!opts.backend.empty() || !opts.topology.empty()) {
    std::vector<runner::RunPoint> kept;
    for (auto& p : points) {
      if (!opts.backend.empty() &&
          param(p.params, "collective_backend") != opts.backend) {
        continue;
      }
      if (!opts.topology.empty() &&
          param(p.params, "topology") != opts.topology) {
        continue;
      }
      kept.push_back(std::move(p));
    }
    points = std::move(kept);
    if (points.empty()) {
      std::fprintf(stderr, "no points match the backend/topology filter\n");
      return 2;
    }
  }

  runner::SweepRunner pool(opts.threads);
  print_banner("failover_recovery: " + std::to_string(points.size()) +
               " points (" + std::string(opts.reduced ? "reduced" : "full") +
               ") on " + std::to_string(pool.threads()) + " threads");
  const auto results = pool.run(points);

  Table table({"point", "clean (ms)", "faulted (ms)", "recovery (us)",
               "goodput (MB/s)", "epochs", "grants", "digest"});
  int failed = 0;
  for (const auto& r : results) {
    table.row().add(r.name);
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAILED %s: %s\n", r.name.c_str(),
                   r.error.c_str());
      table.add("ERROR: " + r.error);
      for (int i = 0; i < 6; ++i) table.skip();
      continue;
    }
    table.add(static_cast<double>(counter(r, "clean_ns")) * 1e-6, 3)
        .add(static_cast<double>(counter(r, "faulted_ns")) * 1e-6, 3)
        .add(static_cast<double>(counter(r, "recovery_latency_ns")) * 1e-3, 1)
        .add(static_cast<double>(counter(r, "goodput_bytes_per_s")) * 1e-6, 1)
        .add(counter(r, "route_epochs"))
        .add(counter(r, "reroute_grants"))
        .add(runner::digest_hex(r.metrics.digest));
  }
  table.print();

  if (opts.out != "-") {
    runner::BenchJsonMeta meta;
    meta.point_set = opts.reduced ? "reduced" : "full";
    meta.threads = pool.threads();
    meta.sweep_wall_ms = pool.last_sweep_wall_ms();
    std::ofstream out(opts.out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
      return 2;
    }
    runner::write_bench_json(out, results, meta);
    std::printf("wrote %s\n", opts.out.c_str());
  }

  int mismatches = 0;
  if (opts.check_digests) {
    std::puts("\n== digest check: re-running every point serially ==");
    runner::SweepRunner serial_runner(/*threads=*/1);
    const auto serial = serial_runner.run(points);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const auto& a = results[i];
      const auto& b = serial[i];
      const bool same = a.ok == b.ok && a.metrics.digest == b.metrics.digest &&
                        a.metrics.sim_time == b.metrics.sim_time &&
                        a.metrics.counters == b.metrics.counters;
      if (!same) {
        ++mismatches;
        std::fprintf(stderr, "DIGEST MISMATCH %s: pooled %s vs serial %s\n",
                     a.name.c_str(),
                     runner::digest_hex(a.metrics.digest).c_str(),
                     runner::digest_hex(b.metrics.digest).c_str());
      }
    }
    if (mismatches == 0) {
      std::printf("digest check passed: %zu/%zu points reproduce their "
                  "serial digests\n",
                  serial.size(), serial.size());
    }
  }

  // Every point must have actually recovered through the fabric: at
  // least one re-convergence per cut, and a live post-failover route.
  int regressions = 0;
  for (const auto& r : results) {
    if (!r.ok) continue;
    const auto cuts = std::stoll(param(r.params, "cuts"));
    if (counter(r, "route_epochs") < cuts ||
        counter(r, "goodput_bytes_per_s") <= 0) {
      ++regressions;
      std::fprintf(stderr,
                   "RECOVERY REGRESSION %s: %lld epochs for %lld cuts, "
                   "goodput %lld B/s\n",
                   r.name.c_str(),
                   static_cast<long long>(counter(r, "route_epochs")),
                   static_cast<long long>(cuts),
                   static_cast<long long>(counter(r, "goodput_bytes_per_s")));
    }
  }
  if (regressions == 0) {
    std::puts("recovery check passed: every point re-converged and moved "
              "bulk data over the surviving paths");
  }
  return (failed || mismatches || regressions) ? 1 : 0;
}
