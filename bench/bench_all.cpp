// Unified benchmark driver: executes every simulated figure/ablation
// sweep (src/runner/bench_points.hpp) through the parallel SweepRunner
// and emits both the human tables and a machine-readable
// BENCH_results.json trajectory (schema: docs/BENCHMARKS.md).
//
// Usage:
//   bench_all [--threads=N] [--points=full|reduced] [--suite=NAME]
//             [--out=PATH] [--check-digests] [--list]
//
//   --threads=N       pool size (default: hardware concurrency; 1 = the
//                     serial reference execution)
//   --points=reduced  CI-sized grid — every suite, small problems
//   --suite=NAME      run only the points of one suite (exact match,
//                     e.g. fig_scaling_topology)
//   --out=PATH        JSON output path (default BENCH_results.json;
//                     "-" suppresses the file)
//   --check-digests   after the pooled sweep, re-run every point on one
//                     thread and fail (exit 1) unless every pooled
//                     digest, simulated time, and counter matches its
//                     serial re-run — the concurrent-isolation gate CI
//                     enforces
//   --list            print the point set and exit
//
// Every point is digest-deterministic, so the JSON (wall-clock fields
// aside) is byte-identical across runs and thread counts.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "runner/bench_json.hpp"
#include "runner/bench_points.hpp"
#include "runner/sweep.hpp"

using namespace acc;

namespace {

struct Options {
  std::size_t threads = 0;  // 0 = hardware concurrency
  bool reduced = false;
  bool check_digests = false;
  bool list = false;
  std::string suite;  // empty = every suite
  std::string out = "BENCH_results.json";
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    } else if (arg == "--points=reduced") {
      opts.reduced = true;
    } else if (arg == "--points=full") {
      opts.reduced = false;
    } else if (arg.rfind("--suite=", 0) == 0) {
      opts.suite = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      opts.out = arg.substr(6);
    } else if (arg == "--check-digests") {
      opts.check_digests = true;
    } else if (arg == "--list") {
      opts.list = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void print_suite_tables(const std::vector<runner::RunRecord>& results) {
  std::vector<std::string> suites;
  for (const auto& r : results) {
    bool seen = false;
    for (const auto& s : suites) seen = seen || s == r.suite;
    if (!seen) suites.push_back(r.suite);
  }
  for (const auto& suite : suites) {
    print_banner(suite);
    Table table(
        {"point", "sim (ms)", "speedup", "digest", "wall (ms)", "Mev/s"});
    for (const auto& r : results) {
      if (r.suite != suite) continue;
      table.row().add(r.name);
      if (!r.ok) {
        table.add("ERROR: " + r.error).skip().skip();
      } else {
        table.add(r.metrics.sim_time.as_millis(), 2);
        if (r.metrics.speedup != 0.0) {
          table.add(r.metrics.speedup, 2);
        } else {
          table.skip();
        }
        table.add(runner::digest_hex(r.metrics.digest));
      }
      table.add(r.wall_ms, 1);
      if (r.events_per_sec() > 0.0) {
        table.add(r.events_per_sec() / 1e6, 2);
      } else {
        table.skip();
      }
    }
    table.print();
  }
}

/// Compares the pooled sweep against a serial re-run of the same points:
/// digests, simulated times, and every captured counter must match
/// bit-for-bit (the concurrent-isolation contract).  Returns mismatches.
int compare_against_serial(const std::vector<runner::RunPoint>& points,
                           const std::vector<runner::RunRecord>& pooled) {
  std::puts("\n== digest check: re-running every point serially ==");
  runner::SweepRunner serial_runner(/*threads=*/1);
  const auto serial = serial_runner.run(points);
  int mismatches = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = pooled[i];
    const auto& b = serial[i];
    const bool same = a.ok == b.ok && a.metrics.digest == b.metrics.digest &&
                      a.metrics.sim_time == b.metrics.sim_time &&
                      a.metrics.trace_records == b.metrics.trace_records &&
                      a.metrics.events == b.metrics.events &&
                      a.metrics.counters == b.metrics.counters;
    if (!same) {
      ++mismatches;
      std::fprintf(stderr,
                   "DIGEST MISMATCH %s/%s: pooled %s (%.3f ms) vs serial "
                   "%s (%.3f ms)\n",
                   a.suite.c_str(), a.name.c_str(),
                   runner::digest_hex(a.metrics.digest).c_str(),
                   a.metrics.sim_time.as_millis(),
                   runner::digest_hex(b.metrics.digest).c_str(),
                   b.metrics.sim_time.as_millis());
    }
  }
  if (mismatches == 0) {
    std::printf("digest check passed: %zu/%zu points reproduce their "
                "serial digests\n",
                serial.size(), serial.size());
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  auto points = runner::figure_sweep_points(opts.reduced);
  if (!opts.suite.empty()) {
    std::vector<runner::RunPoint> kept;
    for (auto& p : points) {
      if (p.suite == opts.suite) kept.push_back(std::move(p));
    }
    if (kept.empty()) {
      std::fprintf(stderr, "no points in suite %s\n", opts.suite.c_str());
      return 2;
    }
    points = std::move(kept);
  }
  if (opts.list) {
    for (const auto& p : points) {
      std::printf("%s/%s\n", p.suite.c_str(), p.name.c_str());
    }
    return 0;
  }

  runner::SweepRunner pool(opts.threads);
  print_banner("bench_all: " + std::to_string(points.size()) + " points (" +
               std::string(opts.reduced ? "reduced" : "full") + ") on " +
               std::to_string(pool.threads()) + " threads");
  const auto results = pool.run(points);

  print_suite_tables(results);

  int failed = 0;
  double points_wall_ms = 0.0;
  std::uint64_t total_events = 0;
  std::uint64_t total_event_ns = 0;
  for (const auto& r : results) {
    points_wall_ms += r.wall_ms;
    total_events += r.metrics.events;
    total_event_ns += r.wall_ns;
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAILED %s/%s: %s\n", r.suite.c_str(),
                   r.name.c_str(), r.error.c_str());
    }
  }
  const double sweep_wall_ms = pool.last_sweep_wall_ms();
  std::printf(
      "\nsweep: %zu points, %.0f ms wall (sum of points %.0f ms, pool "
      "speedup %.2fx on %zu threads)\n",
      results.size(), sweep_wall_ms, points_wall_ms,
      sweep_wall_ms > 0 ? points_wall_ms / sweep_wall_ms : 0.0,
      pool.threads());
  if (total_event_ns > 0) {
    std::printf("engine: %llu events executed, %.2f M events/sec per thread\n",
                static_cast<unsigned long long>(total_events),
                static_cast<double>(total_events) * 1e3 /
                    static_cast<double>(total_event_ns));
  }

  if (opts.out != "-") {
    runner::BenchJsonMeta meta;
    meta.point_set = opts.reduced ? "reduced" : "full";
    meta.threads = pool.threads();
    meta.sweep_wall_ms = sweep_wall_ms;
    std::ofstream out(opts.out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
      return 2;
    }
    runner::write_bench_json(out, results, meta);
    std::printf("wrote %s\n", opts.out.c_str());
  }

  int mismatches = 0;
  if (opts.check_digests) {
    mismatches = compare_against_serial(points, results);
  }
  return (failed || mismatches) ? 1 : 0;
}
