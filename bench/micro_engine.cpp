// Google-benchmark microbenchmarks of the event core: schedule/dispatch
// throughput of the zero-allocation engine (InlineCallback + 4-ary
// move-out heap + cancelable timers) against a faithful replica of the
// pre-change engine (std::function callbacks in a std::priority_queue
// whose top() is copied out before pop).
//
// The replica reproduces the old hot path exactly — same (when, seq)
// comparator, same copy-out dispatch — so the New-vs-Legacy pairs below
// measure only the data-structure change, not workload drift.  The
// ping-pong pair is the acceptance comparison: the new engine must
// sustain at least 2x the legacy events/sec (compare items_per_second).
#include <benchmark/benchmark.h>

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/lp_workload.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace acc;

// ---------------------------------------------------------------------
// Legacy engine replica (pre-change hot path)
// ---------------------------------------------------------------------

/// The event core as it was before the rewrite: type-erased callbacks in
/// std::function, a std::priority_queue ordered by (when, seq), and a
/// dispatch that copies top() out because top() is const.  No trace or
/// watchdog plumbing — both engines run those branches disabled, so the
/// comparison isolates callback storage and queue mechanics.
class LegacyEngine {
 public:
  using Callback = std::function<void()>;

  Time now() const { return now_; }

  void schedule(Time delay, Callback fn) {
    queue_.push(Scheduled{now_ + delay, next_seq_++, std::move(fn)});
  }

  bool step() {
    if (queue_.empty()) return false;
    Scheduled ev = queue_.top();  // copy-out: top() is const
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Scheduled {
    Time when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
};

// ---------------------------------------------------------------------
// Workloads (templated over the engine so both run identical code)
// ---------------------------------------------------------------------

/// Capture payload sized like the simulator's real events (TCP retransmit
/// captures {this, &conn, generation}; INIC timers {this, dst,
/// generation}): 24 bytes.  Under the old 16-byte std::function SSO this
/// allocates on every schedule *and* on every top() copy; InlineCallback
/// keeps it in the heap entry.
struct EventPayload {
  void* owner;
  std::uint64_t generation;
  std::uint64_t* sink;
};

template <class EngineT>
void schedule_dispatch_round(EngineT& eng, Rng& rng, int events,
                             std::uint64_t& sink) {
  EventPayload payload{&eng, 0, &sink};
  for (int i = 0; i < events; ++i) {
    payload.generation = rng.below(64);
    eng.schedule(Time::nanos(static_cast<std::int64_t>(rng.below(4096))),
                 [payload] { *payload.sink += payload.generation; });
  }
  eng.run();
}

void BM_NewEngine_ScheduleDispatch(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine eng;
    eng.reserve(static_cast<std::size_t>(events));
    Rng rng(7);
    schedule_dispatch_round(eng, rng, events, sink);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_NewEngine_ScheduleDispatch)->Arg(1 << 10)->Arg(1 << 14);

void BM_LegacyEngine_ScheduleDispatch(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    LegacyEngine eng;
    Rng rng(7);
    schedule_dispatch_round(eng, rng, events, sink);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_LegacyEngine_ScheduleDispatch)->Arg(1 << 10)->Arg(1 << 14);

// ---------------------------------------------------------------------
// Coroutine ping-pong (the acceptance comparison)
// ---------------------------------------------------------------------

/// Minimal fire-and-forget coroutine, engine-agnostic.  The simulator's
/// own Process type is welded to sim::Engine, so the legacy comparison
/// uses this micro task instead; the resume path (event fires -> handle
/// resumes -> next await schedules) is the same shape either way.
struct MicroTask {
  struct promise_type {
    MicroTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// co_await delay on either engine.  The scheduled resume lambda carries
/// the handle plus the same payload the repo's Delay awaiter effectively
/// carries (owner + deadline) so the capture is representative, not
/// artificially tiny.
template <class EngineT>
struct MicroDelay {
  EngineT& eng;
  Time delay;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    const Time deadline = eng.now() + delay;
    void* owner = &eng;
    eng.schedule(delay, [h, owner, deadline] {
      benchmark::DoNotOptimize(owner);
      benchmark::DoNotOptimize(deadline);
      h.resume();
    });
  }
  void await_resume() const noexcept {}
};

/// Per-message defensive timer, pre- and post-change idiom.  Every
/// message in the simulator's protocols (TCP burst, INIC go-back-N) arms
/// a retransmission timeout that the ACK almost always beats.  The old
/// engine left the stale timer queued until it fired as a
/// generation-checked no-op; the new engine cancels it out of the heap.
/// The ping-pong below arms one per round on both engines, so the pair
/// measures the pre/post-change engine on the same protocol behaviour.
struct NewEngineRto {
  sim::TimerHandle arm(sim::Engine& eng) {
    return eng.schedule_cancelable(Time::micros(200), [] {});
  }
  void ack(sim::Engine&, sim::TimerHandle h) { h.cancel(); }
};

struct LegacyEngineRto {
  std::uint64_t generation = 0;

  std::uint64_t arm(LegacyEngine& eng) {
    const std::uint64_t armed = generation;
    auto* self = this;
    eng.schedule(Time::micros(200), [self, armed] {
      // Stale-fire no-op: by the time this dispatches the ACK has long
      // since bumped the generation.
      benchmark::DoNotOptimize(self->generation == armed);
    });
    return armed;
  }
  void ack(LegacyEngine&, std::uint64_t) { ++generation; }
};

template <class EngineT, class RtoT>
MicroTask ping_pong_player(EngineT& eng, RtoT& rto, int rounds, Time period,
                           std::uint64_t& bounces) {
  for (int i = 0; i < rounds; ++i) {
    auto armed = rto.arm(eng);
    co_await MicroDelay<EngineT>{eng, period};
    rto.ack(eng, armed);
    ++bounces;
  }
}

template <class EngineT, class RtoT>
std::uint64_t run_ping_pong(EngineT& eng, std::vector<RtoT>& rtos,
                            int rounds) {
  std::uint64_t bounces = 0;
  // All players awake at the same instants: every round exercises the
  // FIFO tie-break as well as schedule/dispatch/resume.  On the legacy
  // engine the armed RTOs (200 us out, 1 us rounds) pile up as pending
  // dead weight exactly as they did in the pre-change TCP/INIC models.
  for (auto& rto : rtos) {
    ping_pong_player(eng, rto, rounds, Time::micros(1), bounces);
  }
  eng.run();
  return bounces;
}

void BM_NewEngine_CoroutinePingPong(benchmark::State& state) {
  const int players = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  std::uint64_t total = 0;
  for (auto _ : state) {
    sim::Engine eng;
    std::vector<NewEngineRto> rtos(static_cast<std::size_t>(players));
    total += run_ping_pong(eng, rtos, rounds);
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations() * players * rounds);
}
BENCHMARK(BM_NewEngine_CoroutinePingPong)
    ->Args({2, 1 << 12})
    ->Args({256, 1 << 7});

void BM_LegacyEngine_CoroutinePingPong(benchmark::State& state) {
  const int players = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  std::uint64_t total = 0;
  for (auto _ : state) {
    LegacyEngine eng;
    std::vector<LegacyEngineRto> rtos(static_cast<std::size_t>(players));
    total += run_ping_pong(eng, rtos, rounds);
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations() * players * rounds);
}
BENCHMARK(BM_LegacyEngine_CoroutinePingPong)
    ->Args({2, 1 << 12})
    ->Args({256, 1 << 7});

// ---------------------------------------------------------------------
// Timer churn: defensive timers that almost never fire
// ---------------------------------------------------------------------

/// The retransmit-timeout pattern: arm a timer per message, then the ACK
/// arrives first.  New engine: cancel() removes the event in O(log n).
/// Legacy engine: the stale timer stays queued and fires as a
/// generation-checked no-op — the pre-change TCP/INIC behaviour.
void BM_NewEngine_TimerChurn(benchmark::State& state) {
  const int messages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.reserve(static_cast<std::size_t>(messages) * 2);
    std::uint64_t acked = 0;
    for (int i = 0; i < messages; ++i) {
      auto rto = eng.schedule_cancelable(Time::millis(200), [] {});
      // The ACK arrives long before the timeout and disarms it.
      eng.schedule(Time::micros(i + 1), [rto, &acked]() mutable {
        rto.cancel();
        ++acked;
      });
    }
    eng.run();
    benchmark::DoNotOptimize(acked);
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_NewEngine_TimerChurn)->Arg(1 << 12);

void BM_LegacyEngine_TimerChurn(benchmark::State& state) {
  const int messages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LegacyEngine eng;
    std::uint64_t acked = 0;
    auto generation = std::make_shared<std::vector<std::uint64_t>>(
        static_cast<std::size_t>(messages), 0);
    for (int i = 0; i < messages; ++i) {
      const std::uint64_t armed = (*generation)[static_cast<std::size_t>(i)];
      eng.schedule(Time::millis(200), [generation, i, armed] {
        // Stale-fire no-op: the generation moved on when the ACK landed.
        benchmark::DoNotOptimize(
            (*generation)[static_cast<std::size_t>(i)] == armed);
      });
      eng.schedule(Time::micros(i + 1), [generation, i, &acked] {
        ++(*generation)[static_cast<std::size_t>(i)];
        ++acked;
      });
    }
    eng.run();
    benchmark::DoNotOptimize(acked);
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_LegacyEngine_TimerChurn)->Arg(1 << 12);

// ---------------------------------------------------------------------
// Cancel-heavy: interior removal under load
// ---------------------------------------------------------------------

/// Worst case for the slot table: a large queue where most cancelable
/// events are removed from the middle of the heap before firing.
void BM_NewEngine_CancelHeavy(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.reserve(static_cast<std::size_t>(events));
    Rng rng(11);
    std::vector<sim::TimerHandle> handles;
    handles.reserve(static_cast<std::size_t>(events));
    for (int i = 0; i < events; ++i) {
      handles.push_back(eng.schedule_cancelable(
          Time::nanos(static_cast<std::int64_t>(rng.below(1u << 20))),
          [] {}));
    }
    // Cancel ~75% in random order, then drain the survivors.
    for (auto& h : handles) {
      if (rng.below(4) != 0) h.cancel();
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_canceled());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_NewEngine_CancelHeavy)->Arg(1 << 12)->Arg(1 << 16);

// ---------------------------------------------------------------------
// Parallel engine: LP-partitioned fabric traffic across worker counts
// ---------------------------------------------------------------------

/// Window-scheduler scaling on the real topology-derived workload
/// (net/lp_workload.hpp): the same seeded traffic at 1/2/4 workers, so
/// the reported items_per_second trajectory is the per-thread scaling
/// curve the engine_scaling suite gates on.  Every run's digest is
/// thread-count independent — this benchmark folds it into a sink, not
/// an assertion (tests/parallel_scaling_test.cpp owns that check).
void BM_ParallelEngine_LpFabric(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  net::LpWorkloadConfig cfg;
  cfg.topology = net::TopologyConfig::fat_tree(3);
  cfg.hosts = 128;  // k = 8: 80 switch LPs
  cfg.frames_per_host = 16;
  cfg.switch_work = 512;
  std::uint64_t digest_sink = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const net::LpWorkloadResult r = net::run_lp_workload(cfg, threads);
    digest_sink ^= r.digest;
    events = r.events;
  }
  benchmark::DoNotOptimize(digest_sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ParallelEngine_LpFabric)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Barrier overhead in isolation: many near-empty windows (one event per
/// LP per window, negligible per-event work), so the cost measured is
/// almost purely wakeup + claim + drain per window.  Watch this one when
/// touching the worker-pool synchronization.
void BM_ParallelEngine_WindowBarrier(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLps = 8;
  constexpr int kWindows = 256;
  for (auto _ : state) {
    sim::ParallelConfig cfg;
    cfg.threads = threads;
    cfg.lookahead = Time::nanos(100);
    sim::ParallelEngine peng(kLps, cfg);
    for (std::size_t lp = 0; lp < kLps; ++lp) {
      for (int w = 0; w < kWindows; ++w) {
        peng.lp(lp).schedule_at(Time::nanos(w * 100), [] {});
      }
    }
    peng.run();
    benchmark::DoNotOptimize(peng.windows());
  }
  state.SetItemsProcessed(state.iterations() * kWindows);
}
BENCHMARK(BM_ParallelEngine_WindowBarrier)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
