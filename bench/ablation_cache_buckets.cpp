// Ablation: count-sort bucket count vs cache residency (Section 3.2.1).
//
// "On a problem size of 2^21 keys or more, a minimum of 128 buckets are
// needed for the problem to map well into cache."  Real-hardware
// measurement of the full host pipeline (bucket distribution + count
// sort per bucket) across bucket counts: with too few buckets each
// bucket overflows the cache and the count-sort passes go to DRAM.
#include <chrono>
#include <cstdio>

#include "algo/sort.hpp"
#include "common/table.hpp"

using namespace acc;
using Clock = std::chrono::steady_clock;

int main() {
  print_banner(
      "Ablation: cache buckets vs host sort time, real hardware, 2^21 keys");

  const std::size_t n_keys = std::size_t{1} << 21;
  const auto keys = algo::uniform_keys(n_keys, 77);

  Table table({"buckets", "bucket bytes", "sort time (ms)"});
  for (std::size_t buckets : {1u, 8u, 32u, 128u, 256u, 1024u}) {
    double best = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      auto copy = keys;
      const auto t0 = Clock::now();
      algo::cache_aware_sort(copy, buckets);
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    table.row()
        .add(static_cast<std::int64_t>(buckets))
        .add(static_cast<std::int64_t>(n_keys * 4 / buckets))
        .add(best * 1e3, 1);
  }
  table.print();

  std::puts(
      "\nExpected (paper, Section 3.2.1): times improve as buckets shrink"
      "\ninto cache; little further gain beyond the cache-resident point."
      "\n(On modern hosts with multi-MB caches the effect is milder than"
      "\non the 2001 Athlon's 256 KB L2 — the knee sits at fewer buckets.)");
  return 0;
}
