// Ablation: the 64 KB card-to-host DMA threshold (Equation 15).
//
// Small card-to-host transfers waste PCI time on DMA setup; large ones
// delay delivery because N buckets must accumulate before any one is
// guaranteed to cross the threshold (the T_dfg term).  This sweep shows
// both effects: DMA efficiency rises with the threshold while the
// guaranteed-accumulation delay grows linearly — 64 KB sits near the
// knee, justifying the paper's choice.
#include <cstdio>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "hw/dma.hpp"
#include "model/sort_model.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

using namespace acc;

int main() {
  print_banner("Ablation: card-to-host DMA threshold (integer sort, P = 8, 2^24 keys)");

  const std::size_t keys = std::size_t{1} << 24;

  Table table({"threshold (KB)", "DMA efficiency", "N x thr delay (ms)",
               "sort total (ms)"});
  for (std::uint64_t kib : {4u, 16u, 32u, 64u, 128u, 256u}) {
    model::Calibration cal = model::default_calibration();
    cal.dma_efficiency_threshold = Bytes::kib(kib);

    // DMA efficiency of a transfer of exactly the threshold size.
    sim::Engine eng;
    sim::FifoResource bus(eng, cal.host_pci_bus);
    hw::DmaConfig dma_cfg;
    dma_cfg.setup = cal.dma_setup;
    dma_cfg.max_burst = cal.dma_efficiency_threshold;
    hw::DmaEngine dma(bus, dma_cfg);

    // Equation (15) delay term at N = 256 buckets.
    model::SortAnalyticModel sort_model(cal);
    const Time accum = sort_model.t_dfg(256);

    apps::SimCluster cluster(8, apps::Interconnect::kInicIdeal, cal);
    apps::SortRunOptions opts;
    opts.verify = false;
    const auto r = run_parallel_sort(cluster, keys, opts);

    table.row()
        .add(static_cast<std::int64_t>(kib))
        .add(dma.efficiency(cal.dma_efficiency_threshold), 3)
        .add(accum.as_millis(), 1)
        .add(r.total.as_millis(), 1);
  }
  table.print();

  std::puts(
      "\nExpected: efficiency saturates past ~64 KB while the guaranteed"
      "\naccumulation delay keeps growing — 64 KB is near the knee.");
  return 0;
}
