// Google-benchmark microbenchmarks of the real algorithm kernels,
// including the paper's Section 3.2 claim that Count Sort beats
// quicksort ("as much as 2.5x faster").
#include <benchmark/benchmark.h>

#include "algo/fft.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "common/rng.hpp"

namespace {

using namespace acc;

void BM_CountSort(benchmark::State& state) {
  const auto keys =
      algo::uniform_keys(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto copy = keys;
    algo::count_sort(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CountSort)->Range(1 << 12, 1 << 20);

void BM_Quicksort(benchmark::State& state) {
  const auto keys =
      algo::uniform_keys(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto copy = keys;
    algo::quicksort(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Quicksort)->Range(1 << 12, 1 << 20);

void BM_StdSort(benchmark::State& state) {
  const auto keys =
      algo::uniform_keys(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto copy = keys;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSort)->Range(1 << 12, 1 << 20);

void BM_CacheAwareSort(benchmark::State& state) {
  const auto keys = algo::uniform_keys(1 << 20, 1);
  for (auto _ : state) {
    auto copy = keys;
    algo::cache_aware_sort(copy, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_CacheAwareSort)->Arg(1)->Arg(16)->Arg(128)->Arg(256)->Arg(1024);

void BM_BucketPartition(benchmark::State& state) {
  const auto keys = algo::uniform_keys(1 << 20, 1);
  for (auto _ : state) {
    auto buckets = algo::bucket_sort_partition(
        keys, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(buckets.data());
  }
}
BENCHMARK(BM_BucketPartition)->Arg(8)->Arg(16)->Arg(256);

void BM_Fft1D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  algo::FftPlan plan(n, algo::FftPlan::Direction::kForward);
  Rng rng(3);
  std::vector<algo::Complex> signal(n);
  for (auto& x : signal) x = algo::Complex(rng.uniform(-1, 1), 0.0);
  for (auto _ : state) {
    auto copy = signal;
    plan.execute(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fft1D)->Arg(256)->Arg(512)->Arg(4096);

void BM_Fft2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  algo::Matrix<algo::Complex> m(n, n);
  for (auto& x : m.storage()) x = algo::Complex(rng.uniform(-1, 1), 0.0);
  for (auto _ : state) {
    auto copy = m;
    algo::fft2d_inplace(copy);
    benchmark::DoNotOptimize(copy.storage().data());
  }
}
BENCHMARK(BM_Fft2D)->Arg(256)->Arg(512);

void BM_LocalTransposeBlocks(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512, m = n / p;
  algo::Matrix<algo::Complex> slab(m, n, algo::Complex(1.0, 2.0));
  for (auto _ : state) {
    algo::local_transpose_blocks(slab);
    benchmark::DoNotOptimize(slab.storage().data());
  }
}
BENCHMARK(BM_LocalTransposeBlocks)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
