# Empty dependencies file for acc.
# This may be replaced when dependencies are built.
