file(REMOVE_RECURSE
  "libacc.a"
)
