
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/fft.cpp" "src/CMakeFiles/acc.dir/algo/fft.cpp.o" "gcc" "src/CMakeFiles/acc.dir/algo/fft.cpp.o.d"
  "/root/repo/src/algo/sort.cpp" "src/CMakeFiles/acc.dir/algo/sort.cpp.o" "gcc" "src/CMakeFiles/acc.dir/algo/sort.cpp.o.d"
  "/root/repo/src/apps/cluster.cpp" "src/CMakeFiles/acc.dir/apps/cluster.cpp.o" "gcc" "src/CMakeFiles/acc.dir/apps/cluster.cpp.o.d"
  "/root/repo/src/apps/fft_app.cpp" "src/CMakeFiles/acc.dir/apps/fft_app.cpp.o" "gcc" "src/CMakeFiles/acc.dir/apps/fft_app.cpp.o.d"
  "/root/repo/src/apps/sort_app.cpp" "src/CMakeFiles/acc.dir/apps/sort_app.cpp.o" "gcc" "src/CMakeFiles/acc.dir/apps/sort_app.cpp.o.d"
  "/root/repo/src/collectives/collectives.cpp" "src/CMakeFiles/acc.dir/collectives/collectives.cpp.o" "gcc" "src/CMakeFiles/acc.dir/collectives/collectives.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/acc.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/acc.dir/common/units.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/acc.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/acc.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/acc.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/acc.dir/core/report.cpp.o.d"
  "/root/repo/src/dtype/datatype.cpp" "src/CMakeFiles/acc.dir/dtype/datatype.cpp.o" "gcc" "src/CMakeFiles/acc.dir/dtype/datatype.cpp.o.d"
  "/root/repo/src/inic/card.cpp" "src/CMakeFiles/acc.dir/inic/card.cpp.o" "gcc" "src/CMakeFiles/acc.dir/inic/card.cpp.o.d"
  "/root/repo/src/model/fft_model.cpp" "src/CMakeFiles/acc.dir/model/fft_model.cpp.o" "gcc" "src/CMakeFiles/acc.dir/model/fft_model.cpp.o.d"
  "/root/repo/src/model/sort_model.cpp" "src/CMakeFiles/acc.dir/model/sort_model.cpp.o" "gcc" "src/CMakeFiles/acc.dir/model/sort_model.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/acc.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/acc.dir/net/network.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/CMakeFiles/acc.dir/net/nic.cpp.o" "gcc" "src/CMakeFiles/acc.dir/net/nic.cpp.o.d"
  "/root/repo/src/proto/tcp.cpp" "src/CMakeFiles/acc.dir/proto/tcp.cpp.o" "gcc" "src/CMakeFiles/acc.dir/proto/tcp.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/acc.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/acc.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/CMakeFiles/acc.dir/sim/process.cpp.o" "gcc" "src/CMakeFiles/acc.dir/sim/process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
