# Empty dependencies file for collective_offload.
# This may be replaced when dependencies are built.
