file(REMOVE_RECURSE
  "CMakeFiles/collective_offload.dir/collective_offload.cpp.o"
  "CMakeFiles/collective_offload.dir/collective_offload.cpp.o.d"
  "collective_offload"
  "collective_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
