# Empty dependencies file for custom_offload.
# This may be replaced when dependencies are built.
