file(REMOVE_RECURSE
  "CMakeFiles/fft_cluster.dir/fft_cluster.cpp.o"
  "CMakeFiles/fft_cluster.dir/fft_cluster.cpp.o.d"
  "fft_cluster"
  "fft_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
