# Empty dependencies file for fft_cluster.
# This may be replaced when dependencies are built.
