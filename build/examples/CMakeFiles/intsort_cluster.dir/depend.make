# Empty dependencies file for intsort_cluster.
# This may be replaced when dependencies are built.
