file(REMOVE_RECURSE
  "CMakeFiles/intsort_cluster.dir/intsort_cluster.cpp.o"
  "CMakeFiles/intsort_cluster.dir/intsort_cluster.cpp.o.d"
  "intsort_cluster"
  "intsort_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intsort_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
