file(REMOVE_RECURSE
  "CMakeFiles/collectives_compare.dir/collectives_compare.cpp.o"
  "CMakeFiles/collectives_compare.dir/collectives_compare.cpp.o.d"
  "collectives_compare"
  "collectives_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
