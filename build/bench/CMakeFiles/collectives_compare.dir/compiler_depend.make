# Empty compiler generated dependencies file for collectives_compare.
# This may be replaced when dependencies are built.
