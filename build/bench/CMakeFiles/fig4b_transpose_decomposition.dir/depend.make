# Empty dependencies file for fig4b_transpose_decomposition.
# This may be replaced when dependencies are built.
