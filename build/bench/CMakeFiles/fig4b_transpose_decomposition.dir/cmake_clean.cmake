file(REMOVE_RECURSE
  "CMakeFiles/fig4b_transpose_decomposition.dir/fig4b_transpose_decomposition.cpp.o"
  "CMakeFiles/fig4b_transpose_decomposition.dir/fig4b_transpose_decomposition.cpp.o.d"
  "fig4b_transpose_decomposition"
  "fig4b_transpose_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_transpose_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
