# Empty compiler generated dependencies file for ablation_interrupt_coalescing.
# This may be replaced when dependencies are built.
