file(REMOVE_RECURSE
  "CMakeFiles/ablation_interrupt_coalescing.dir/ablation_interrupt_coalescing.cpp.o"
  "CMakeFiles/ablation_interrupt_coalescing.dir/ablation_interrupt_coalescing.cpp.o.d"
  "ablation_interrupt_coalescing"
  "ablation_interrupt_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interrupt_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
