# Empty dependencies file for fig8b_sort_speedup_sim.
# This may be replaced when dependencies are built.
