file(REMOVE_RECURSE
  "CMakeFiles/fig8b_sort_speedup_sim.dir/fig8b_sort_speedup_sim.cpp.o"
  "CMakeFiles/fig8b_sort_speedup_sim.dir/fig8b_sort_speedup_sim.cpp.o.d"
  "fig8b_sort_speedup_sim"
  "fig8b_sort_speedup_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_sort_speedup_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
