# Empty dependencies file for fig5a_sort_components.
# This may be replaced when dependencies are built.
