file(REMOVE_RECURSE
  "CMakeFiles/fig5a_sort_components.dir/fig5a_sort_components.cpp.o"
  "CMakeFiles/fig5a_sort_components.dir/fig5a_sort_components.cpp.o.d"
  "fig5a_sort_components"
  "fig5a_sort_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_sort_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
