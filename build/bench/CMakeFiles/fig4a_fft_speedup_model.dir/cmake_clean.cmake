file(REMOVE_RECURSE
  "CMakeFiles/fig4a_fft_speedup_model.dir/fig4a_fft_speedup_model.cpp.o"
  "CMakeFiles/fig4a_fft_speedup_model.dir/fig4a_fft_speedup_model.cpp.o.d"
  "fig4a_fft_speedup_model"
  "fig4a_fft_speedup_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_fft_speedup_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
