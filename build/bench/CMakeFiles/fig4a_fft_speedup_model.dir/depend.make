# Empty dependencies file for fig4a_fft_speedup_model.
# This may be replaced when dependencies are built.
