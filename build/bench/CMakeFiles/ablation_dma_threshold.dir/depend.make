# Empty dependencies file for ablation_dma_threshold.
# This may be replaced when dependencies are built.
