file(REMOVE_RECURSE
  "CMakeFiles/ablation_dma_threshold.dir/ablation_dma_threshold.cpp.o"
  "CMakeFiles/ablation_dma_threshold.dir/ablation_dma_threshold.cpp.o.d"
  "ablation_dma_threshold"
  "ablation_dma_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dma_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
