# Empty compiler generated dependencies file for ablation_rc_placement.
# This may be replaced when dependencies are built.
