file(REMOVE_RECURSE
  "CMakeFiles/ablation_rc_placement.dir/ablation_rc_placement.cpp.o"
  "CMakeFiles/ablation_rc_placement.dir/ablation_rc_placement.cpp.o.d"
  "ablation_rc_placement"
  "ablation_rc_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rc_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
