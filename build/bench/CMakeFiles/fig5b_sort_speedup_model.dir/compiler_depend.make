# Empty compiler generated dependencies file for fig5b_sort_speedup_model.
# This may be replaced when dependencies are built.
