file(REMOVE_RECURSE
  "CMakeFiles/fig5b_sort_speedup_model.dir/fig5b_sort_speedup_model.cpp.o"
  "CMakeFiles/fig5b_sort_speedup_model.dir/fig5b_sort_speedup_model.cpp.o.d"
  "fig5b_sort_speedup_model"
  "fig5b_sort_speedup_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_sort_speedup_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
