file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_buckets.dir/ablation_cache_buckets.cpp.o"
  "CMakeFiles/ablation_cache_buckets.dir/ablation_cache_buckets.cpp.o.d"
  "ablation_cache_buckets"
  "ablation_cache_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
