# Empty dependencies file for ablation_cache_buckets.
# This may be replaced when dependencies are built.
