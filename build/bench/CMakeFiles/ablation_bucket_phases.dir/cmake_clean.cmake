file(REMOVE_RECURSE
  "CMakeFiles/ablation_bucket_phases.dir/ablation_bucket_phases.cpp.o"
  "CMakeFiles/ablation_bucket_phases.dir/ablation_bucket_phases.cpp.o.d"
  "ablation_bucket_phases"
  "ablation_bucket_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bucket_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
