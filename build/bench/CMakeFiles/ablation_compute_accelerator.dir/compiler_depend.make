# Empty compiler generated dependencies file for ablation_compute_accelerator.
# This may be replaced when dependencies are built.
