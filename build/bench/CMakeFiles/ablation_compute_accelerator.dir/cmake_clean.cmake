file(REMOVE_RECURSE
  "CMakeFiles/ablation_compute_accelerator.dir/ablation_compute_accelerator.cpp.o"
  "CMakeFiles/ablation_compute_accelerator.dir/ablation_compute_accelerator.cpp.o.d"
  "ablation_compute_accelerator"
  "ablation_compute_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compute_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
