# Empty compiler generated dependencies file for ablation_key_distribution.
# This may be replaced when dependencies are built.
