file(REMOVE_RECURSE
  "CMakeFiles/ablation_key_distribution.dir/ablation_key_distribution.cpp.o"
  "CMakeFiles/ablation_key_distribution.dir/ablation_key_distribution.cpp.o.d"
  "ablation_key_distribution"
  "ablation_key_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_key_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
