file(REMOVE_RECURSE
  "CMakeFiles/ablation_derived_datatypes.dir/ablation_derived_datatypes.cpp.o"
  "CMakeFiles/ablation_derived_datatypes.dir/ablation_derived_datatypes.cpp.o.d"
  "ablation_derived_datatypes"
  "ablation_derived_datatypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_derived_datatypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
