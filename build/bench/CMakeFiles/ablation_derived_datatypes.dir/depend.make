# Empty dependencies file for ablation_derived_datatypes.
# This may be replaced when dependencies are built.
