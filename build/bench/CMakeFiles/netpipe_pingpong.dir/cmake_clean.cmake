file(REMOVE_RECURSE
  "CMakeFiles/netpipe_pingpong.dir/netpipe_pingpong.cpp.o"
  "CMakeFiles/netpipe_pingpong.dir/netpipe_pingpong.cpp.o.d"
  "netpipe_pingpong"
  "netpipe_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpipe_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
