# Empty dependencies file for netpipe_pingpong.
# This may be replaced when dependencies are built.
