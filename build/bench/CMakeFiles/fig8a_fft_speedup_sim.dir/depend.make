# Empty dependencies file for fig8a_fft_speedup_sim.
# This may be replaced when dependencies are built.
