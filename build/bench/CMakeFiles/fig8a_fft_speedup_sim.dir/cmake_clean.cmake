file(REMOVE_RECURSE
  "CMakeFiles/fig8a_fft_speedup_sim.dir/fig8a_fft_speedup_sim.cpp.o"
  "CMakeFiles/fig8a_fft_speedup_sim.dir/fig8a_fft_speedup_sim.cpp.o.d"
  "fig8a_fft_speedup_sim"
  "fig8a_fft_speedup_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_fft_speedup_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
