file(REMOVE_RECURSE
  "CMakeFiles/inic_card_test.dir/inic_card_test.cpp.o"
  "CMakeFiles/inic_card_test.dir/inic_card_test.cpp.o.d"
  "inic_card_test"
  "inic_card_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inic_card_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
