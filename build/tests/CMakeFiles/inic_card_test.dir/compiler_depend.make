# Empty compiler generated dependencies file for inic_card_test.
# This may be replaced when dependencies are built.
