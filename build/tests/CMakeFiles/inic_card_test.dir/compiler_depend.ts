# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for inic_card_test.
