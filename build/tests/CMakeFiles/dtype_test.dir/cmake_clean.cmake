file(REMOVE_RECURSE
  "CMakeFiles/dtype_test.dir/dtype_test.cpp.o"
  "CMakeFiles/dtype_test.dir/dtype_test.cpp.o.d"
  "dtype_test"
  "dtype_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
