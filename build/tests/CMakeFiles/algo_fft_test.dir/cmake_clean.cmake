file(REMOVE_RECURSE
  "CMakeFiles/algo_fft_test.dir/algo_fft_test.cpp.o"
  "CMakeFiles/algo_fft_test.dir/algo_fft_test.cpp.o.d"
  "algo_fft_test"
  "algo_fft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
