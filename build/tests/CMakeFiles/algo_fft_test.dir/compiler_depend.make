# Empty compiler generated dependencies file for algo_fft_test.
# This may be replaced when dependencies are built.
