# Empty dependencies file for algo_sort_test.
# This may be replaced when dependencies are built.
