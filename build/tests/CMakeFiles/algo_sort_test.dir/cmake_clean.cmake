file(REMOVE_RECURSE
  "CMakeFiles/algo_sort_test.dir/algo_sort_test.cpp.o"
  "CMakeFiles/algo_sort_test.dir/algo_sort_test.cpp.o.d"
  "algo_sort_test"
  "algo_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
