file(REMOVE_RECURSE
  "CMakeFiles/proto_inbox_test.dir/proto_inbox_test.cpp.o"
  "CMakeFiles/proto_inbox_test.dir/proto_inbox_test.cpp.o.d"
  "proto_inbox_test"
  "proto_inbox_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_inbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
