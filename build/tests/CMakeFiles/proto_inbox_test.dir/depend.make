# Empty dependencies file for proto_inbox_test.
# This may be replaced when dependencies are built.
