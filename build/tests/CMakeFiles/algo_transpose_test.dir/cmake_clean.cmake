file(REMOVE_RECURSE
  "CMakeFiles/algo_transpose_test.dir/algo_transpose_test.cpp.o"
  "CMakeFiles/algo_transpose_test.dir/algo_transpose_test.cpp.o.d"
  "algo_transpose_test"
  "algo_transpose_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_transpose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
