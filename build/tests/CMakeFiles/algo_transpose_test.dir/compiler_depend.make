# Empty compiler generated dependencies file for algo_transpose_test.
# This may be replaced when dependencies are built.
