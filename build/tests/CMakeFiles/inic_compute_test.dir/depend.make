# Empty dependencies file for inic_compute_test.
# This may be replaced when dependencies are built.
