file(REMOVE_RECURSE
  "CMakeFiles/inic_compute_test.dir/inic_compute_test.cpp.o"
  "CMakeFiles/inic_compute_test.dir/inic_compute_test.cpp.o.d"
  "inic_compute_test"
  "inic_compute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inic_compute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
