# Empty dependencies file for apps_fft_test.
# This may be replaced when dependencies are built.
