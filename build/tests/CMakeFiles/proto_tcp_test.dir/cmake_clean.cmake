file(REMOVE_RECURSE
  "CMakeFiles/proto_tcp_test.dir/proto_tcp_test.cpp.o"
  "CMakeFiles/proto_tcp_test.dir/proto_tcp_test.cpp.o.d"
  "proto_tcp_test"
  "proto_tcp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_tcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
