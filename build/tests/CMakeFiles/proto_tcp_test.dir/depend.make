# Empty dependencies file for proto_tcp_test.
# This may be replaced when dependencies are built.
