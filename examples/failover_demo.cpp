// Failover walkthrough: cut an interior fabric link — permanently —
// in the middle of a live allreduce on a fat-tree, and watch the
// fault-aware routing plane carry the run to a bit-identical result:
//
//   1. the link-state layer declares the link dead (consecutive-drop
//      fast path, backed by seeded heartbeat probes with hysteresis),
//   2. the fabric re-converges its next-port tables over the surviving
//      links (ECMP among minimal paths, lowest-link-id tie-break),
//   3. the INIC go-back-N plane asks the fabric for a reroute and
//      re-arms instead of declaring the peer unreachable.
//
//   $ ./failover_demo
//
// The run is deterministic: the same seed and fault plan replay the
// same detection instants, the same re-convergence, the same recovery.
// Set ACC_TRACE=/tmp/failover.json to see the kRouting records, or
// ACC_TRACE_DIGEST=1 to print the run digest —
// scripts/check_determinism.sh uses that to check failover replays
// bit-identically across processes, locales and address-space layouts.
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "collectives/collectives.hpp"
#include "core/acc.hpp"

using namespace acc;

namespace {

apps::ClusterOptions failover_options(apps::CollectiveBackend backend) {
  apps::ClusterOptions opts;
  opts.inic_hw_retransmit = true;  // go-back-N is the recovery engine
  opts.inic_max_retries = 8;
  opts.degraded_fallback = false;  // the fabric itself must recover
  opts.adaptive_routing = true;
  opts.topology = net::TopologyConfig::fat_tree(2);
  opts.collective_backend = backend;
  return opts;
}

/// First interior link incident to host 0's attach switch — traffic off
/// the switch is guaranteed to cross it, so cutting it forces failover.
std::pair<int, int> first_uplink(net::Network& net) {
  const auto& plan = net.plan();
  const int sw = plan.hosts.front().sw;
  for (const auto& port : plan.switches[static_cast<std::size_t>(sw)].ports) {
    if (port.peer_switch < 0) continue;
    return {std::min(sw, port.peer_switch), std::max(sw, port.peer_switch)};
  }
  return {-1, -1};
}

struct Outcome {
  bool verified = false;
  Time total = Time::zero();
  std::uint64_t route_epochs = 0;
  std::uint64_t reroute_grants = 0;
  std::uint64_t peers_lost = 0;
};

Outcome run(apps::CollectiveBackend backend, bool cut, Time clean) {
  constexpr std::size_t kNodes = 16;
  constexpr std::size_t kElements = 256;
  apps::SimCluster cluster(kNodes, apps::Interconnect::kInicIdeal,
                           model::default_calibration(),
                           failover_options(backend));
  cluster.engine().set_time_budget(Time::seconds(5));  // watchdog backstop
  fault::FaultPlan plan;
  if (cut) {
    const auto link = first_uplink(cluster.network());
    plan.with_interior_link_failed(link.first, link.second, clean * 0.25);
  }
  fault::FaultInjector injector(cluster, plan);

  const auto ar = coll::topology_allreduce(cluster, kElements, /*seed=*/5);
  const auto bc = coll::topology_broadcast(cluster, kElements, /*seed=*/6);

  Outcome out;
  out.verified = ar.verified && bc.verified;
  out.total = cluster.engine().now();
  out.route_epochs = cluster.network().route_epoch();
  for (std::size_t i = 0; i < kNodes; ++i) {
    out.peers_lost += cluster.card(i).peers_lost();
    out.reroute_grants += cluster.card(i).reroutes();
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Failover demo: permanent interior-link cut mid-allreduce on a\n"
      "fat-tree of 16 INIC nodes, host and NIC collective backends\n\n");

  bool all_ok = true;
  Table table({"backend", "run", "total (ms)", "route epochs",
               "reroute grants", "peers lost", "result"});
  for (auto backend : {apps::CollectiveBackend::kHost,
                       apps::CollectiveBackend::kNic}) {
    const Outcome clean = run(backend, /*cut=*/false, Time::zero());
    const Outcome faulted = run(backend, /*cut=*/true, clean.total);
    all_ok = all_ok && clean.verified && faulted.verified &&
             faulted.peers_lost == 0 && faulted.route_epochs > 0;
    for (const auto* pair : {&clean, &faulted}) {
      table.row()
          .add(apps::to_string(backend))
          .add(pair == &clean ? "clean" : "link cut")
          .add(pair->total.as_millis(), 3)
          .add(static_cast<std::int64_t>(pair->route_epochs))
          .add(static_cast<std::int64_t>(pair->reroute_grants))
          .add(static_cast<std::int64_t>(pair->peers_lost))
          .add(pair->verified ? "verified" : "WRONG");
    }
  }
  table.print();

  std::printf(
      "\nThe cut lands mid-allreduce; the fabric detects it from the\n"
      "dropped frames, re-converges onto the surviving uplink, and the\n"
      "go-back-N plane replays the lost bursts over the new route.  No\n"
      "peer is ever written off, and the results stay bit-identical to\n"
      "the fault-free run.\n");
  return all_ok ? 0 : 1;
}
