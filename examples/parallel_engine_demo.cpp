// Parallel engine walkthrough and determinism probe: the same seeded
// workloads at 1/2/4/8 worker threads, with the digests compared
// bit-for-bit (docs/TRACING.md: same seed => same digest for ANY thread
// count).
//
//   1. The LP-partitioned fabric workload (net/lp_workload.hpp) on a
//      64-host 2-level fat tree — real multi-LP window execution with
//      cross-LP mailbox traffic — printing per-thread-count digests,
//      event counts, and host throughput.
//   2. The SimCluster facade (ClusterOptions::engine_threads) driving a
//      neighbour-ring of INIC transfers through SimCluster::run() — the
//      cluster's engine as LP 0 of the window scheduler.
//
//   $ ./parallel_engine_demo        # exits 1 on any digest divergence
//
// scripts/check_determinism.sh replays this binary under
// ACC_TRACE_DIGEST=1 in varied environments: the internal 1-vs-N
// comparison is the thread-count half of the contract, the script's
// cross-process comparison the environment half.  Wall-clock throughput
// varies run to run, of course — only the digest lines are compared.
#include <chrono>
#include <cstdio>
#include <vector>

#include "apps/cluster.hpp"
#include "common/table.hpp"
#include "model/calibration.hpp"
#include "net/lp_workload.hpp"
#include "net/topology.hpp"
#include "sim/process.hpp"

using namespace acc;

namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

int run_lp_fabric_probe() {
  net::LpWorkloadConfig cfg;
  cfg.topology = net::TopologyConfig::fat_tree(2);
  cfg.hosts = 64;
  cfg.frames_per_host = 32;
  cfg.switch_work = 256;

  print_banner("LP fabric workload: 64-host fat tree, 16 switch LPs");
  Table table({"threads", "LPs", "windows", "cross posts", "events",
               "events/sec", "digest"});
  std::uint64_t reference = 0;
  int divergences = 0;
  for (std::size_t threads : kThreadCounts) {
    const auto t0 = std::chrono::steady_clock::now();
    const net::LpWorkloadResult r = net::run_lp_workload(cfg, threads);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (threads == 1) reference = r.digest;
    if (r.digest != reference) ++divergences;
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(r.digest));
    table.row()
        .add(static_cast<std::int64_t>(threads))
        .add(static_cast<std::int64_t>(r.lp_count))
        .add(static_cast<std::int64_t>(r.windows))
        .add(static_cast<std::int64_t>(r.cross_posts))
        .add(static_cast<std::int64_t>(r.events))
        .add(secs > 0 ? static_cast<double>(r.events) / secs : 0.0, 0)
        .add(digest);
    // Mirror the SimCluster ACC_TRACE_DIGEST hook for the determinism
    // script: one digest line per run on stderr, only when asked.
    if (apps::trace_env().trace_digest) {
      std::fprintf(stderr, "acc-trace-digest %s\n", digest);
    }
  }
  table.print();
  if (divergences) {
    std::fprintf(stderr,
                 "FAIL: %d thread count(s) diverged from the 1-thread "
                 "digest\n",
                 divergences);
  } else {
    std::puts("all thread counts reproduce the 1-thread digest");
  }
  return divergences ? 1 : 0;
}

int run_cluster_facade_probe() {
  print_banner(
      "SimCluster facade: 8-node INIC ring via ClusterOptions::"
      "engine_threads");
  Table table({"engine_threads", "events", "sim (us)", "digest"});
  std::uint64_t reference = 0;
  int divergences = 0;
  for (std::size_t threads : kThreadCounts) {
    apps::ClusterOptions copts;
    copts.engine_threads = threads;
    apps::SimCluster cluster(8, apps::Interconnect::kInicIdeal,
                             model::default_calibration(), copts);
    if (!cluster.tracer().enabled()) {
      cluster.tracer().enable(/*ring_capacity=*/64);
    }
    sim::ProcessGroup group(cluster.engine());
    for (int i = 0; i < 8; ++i) {
      const int dst = (i + 1) % 8;
      group.spawn(cluster.transfer(i, dst, Bytes::kib(16),
                                   static_cast<std::uint64_t>(i)));
      group.spawn([](apps::SimCluster& c, int node) -> sim::Process {
        (void)co_await c.inbox(static_cast<std::size_t>(node)).recv();
      }(cluster, dst));
    }
    const Time end = cluster.run();
    group.join();
    const std::uint64_t digest = cluster.tracer().digest();
    if (threads == 1) reference = digest;
    if (digest != reference) ++divergences;
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(digest));
    table.row()
        .add(static_cast<std::int64_t>(threads))
        .add(static_cast<std::int64_t>(cluster.engine().events_executed()))
        .add(end.as_micros(), 1)
        .add(hex);
  }
  table.print();
  if (divergences) {
    std::fprintf(stderr,
                 "FAIL: %d engine_threads value(s) changed the cluster "
                 "digest\n",
                 divergences);
  } else {
    std::puts("engine_threads never changes a cluster run");
  }
  return divergences ? 1 : 0;
}

}  // namespace

int main() {
  const int lp = run_lp_fabric_probe();
  const int facade = run_cluster_facade_probe();
  return (lp || facade) ? 1 : 0;
}
