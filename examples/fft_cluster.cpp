// Distributed 2D-FFT across every interconnect the paper evaluates,
// with a per-phase breakdown — the workload of Sections 3.1, 4.1, 6.1.
//
//   $ ./fft_cluster [matrix_size] [max_nodes]
//
// Runs verified (data-moving) FFTs at a small size, then a timing sweep
// at the requested size, printing speedup tables like Figure 8(a).
#include <cstdio>
#include <cstdlib>

#include "core/acc.hpp"

using namespace acc;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  const std::size_t max_nodes =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
  if (!algo::is_pow2(n)) {
    std::fprintf(stderr, "matrix size must be a power of two\n");
    return 1;
  }

  // Part 1: verified runs — the distributed pipeline moves real data and
  // must match the serial FFT oracle bit-for-bit (within fp tolerance).
  std::puts("verified 64x64 runs (real data through the simulated cluster):");
  for (auto ic :
       {apps::Interconnect::kFastEthernetTcp, apps::Interconnect::kGigabitTcp,
        apps::Interconnect::kInicIdeal, apps::Interconnect::kInicPrototype}) {
    apps::SimCluster cluster(4, ic);
    apps::FftRunOptions opts;
    opts.verify = true;
    const auto r = run_parallel_fft(cluster, 64, opts);
    std::printf("  %-24s %s\n", to_string(ic),
                r.verified ? "OK" : "MISMATCH");
  }

  // Part 2: timing sweep at full size.
  std::printf("\n%zux%zu timing sweep (speedup over serial):\n", n, n);
  const auto serial = apps::run_serial_fft(model::default_calibration(), n);
  std::printf("  serial: %.1f ms (compute %.1f ms + transpose %.1f ms)\n\n",
              serial.total.as_millis(), serial.compute.as_millis(),
              serial.transpose.as_millis());

  Table table({"P", "interconnect", "total (ms)", "compute (ms)",
               "transpose (ms)", "speedup"});
  for (std::size_t p = 1; p <= max_nodes; p *= 2) {
    if (n % p != 0) continue;
    for (auto ic : {apps::Interconnect::kFastEthernetTcp,
                    apps::Interconnect::kGigabitTcp,
                    apps::Interconnect::kInicPrototype,
                    apps::Interconnect::kInicIdeal}) {
      const auto r = core::fft_point(ic, n, p);
      table.row()
          .add(static_cast<std::int64_t>(p))
          .add(to_string(ic))
          .add(r.total.as_millis(), 1)
          .add(r.compute.as_millis(), 1)
          .add(r.transpose.as_millis(), 1)
          .add(serial.total / r.total, 2);
    }
  }
  table.print();
  return 0;
}
