// Collective operations on the INIC — the paper's closing claim made
// runnable: barrier, broadcast, reduce, allreduce, and all-to-all on the
// same cluster with standard NICs, with INICs driven by the host-tree
// backend, and with the card-resident NIC collective engine (trigger
// tables walking a binomial tree entirely on the cards), all
// functionally verified, plus a where-did-the-time-go report.
//
//   $ ./collective_offload [nodes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "collectives/collectives.hpp"
#include "common/table.hpp"
#include "core/report.hpp"
#include "model/calibration.hpp"

using namespace acc;

namespace {

apps::SimCluster nic_engine_cluster(std::size_t nodes) {
  apps::ClusterOptions opts;
  opts.collective_backend = apps::CollectiveBackend::kNic;
  return apps::SimCluster(nodes, apps::Interconnect::kInicIdeal,
                          model::default_calibration(), opts);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t elements = 1 << 15;  // 256 KiB of doubles

  std::printf("collectives on %zu nodes, %zu doubles per vector\n\n", nodes,
              elements);

  Table table({"collective", "TCP/GigE", "INIC host-tree", "NIC engine",
               "best speedup", "verified"});
  using Runner = coll::CollectiveResult (*)(apps::SimCluster&, std::size_t,
                                            std::uint64_t);
  struct Op {
    const char* name;
    Runner run;
  };
  const Op ops[] = {
      {"broadcast", &coll::broadcast},
      {"reduce", &coll::reduce},
      {"allreduce", &coll::allreduce},
      {"alltoall", &coll::alltoall},
  };

  // Barrier first (different signature).
  {
    apps::SimCluster tcp(nodes, apps::Interconnect::kGigabitTcp);
    const auto r_tcp = coll::barrier(tcp);
    apps::SimCluster inic(nodes, apps::Interconnect::kInicIdeal);
    const auto r_inic = coll::barrier(inic);
    apps::SimCluster engine = nic_engine_cluster(nodes);
    const auto r_eng = coll::barrier(engine);
    table.row()
        .add("barrier")
        .add(to_string(r_tcp.total))
        .add(to_string(r_inic.total))
        .add(to_string(r_eng.total))
        .add(r_tcp.total / std::min(r_inic.total, r_eng.total), 2)
        .add(r_tcp.verified && r_inic.verified && r_eng.verified ? "yes"
                                                                 : "NO");
  }
  for (const Op& op : ops) {
    apps::SimCluster tcp(nodes, apps::Interconnect::kGigabitTcp);
    const auto r_tcp = op.run(tcp, elements, 1);
    apps::SimCluster inic(nodes, apps::Interconnect::kInicIdeal);
    const auto r_inic = op.run(inic, elements, 1);
    apps::SimCluster engine = nic_engine_cluster(nodes);
    const auto r_eng = op.run(engine, elements, 1);
    table.row()
        .add(op.name)
        .add(to_string(r_tcp.total))
        .add(to_string(r_inic.total))
        .add(to_string(r_eng.total))
        .add(r_tcp.total / std::min(r_inic.total, r_eng.total), 2)
        .add(r_tcp.verified && r_inic.verified && r_eng.verified ? "yes"
                                                                 : "NO");
  }
  table.print();

  // Show the instrumentation for one of the runs: the card-resident
  // allreduce leaves the host CPUs untouched — zero interrupts, zero
  // protocol time, only the trigger-table counters move.
  std::puts("\nNIC-engine allreduce instrumentation:");
  apps::SimCluster engine = nic_engine_cluster(nodes);
  coll::allreduce(engine, elements, 1);
  core::collect_report(engine).print(std::cout);
  return 0;
}
