// Fault injection walkthrough: run the distributed FFT on an INIC
// cluster while a scripted fault plan batters the fabric — a bursty-loss
// window, a link outage, and an FPGA card reset — and watch the recovery
// machinery (hardware go-back-N, degraded-mode TCP fallback) carry the
// run to a bit-correct result anyway.
//
//   $ ./fault_injection
//
// The run is deterministic: the same fault seed replays the same storm.
// Set ACC_TRACE=/tmp/faulted.json to capture the full timeline (fault
// edges appear under the "fault" category), or ACC_TRACE_DIGEST=1 to
// print the run digest — scripts/check_determinism.sh uses that to check
// faulted runs replay bit-identically.
#include <cstdio>

#include "core/acc.hpp"

using namespace acc;

int main() {
  constexpr std::size_t kNodes = 4;
  constexpr std::size_t kMatrix = 256;

  std::printf("Fault injection demo: %zux%zu 2D-FFT on %zu INIC nodes\n\n",
              kMatrix, kMatrix, kNodes);

  apps::FftRunOptions fft_opts;
  fft_opts.verify = true;

  // Recovery knobs: hardware go-back-N with a retry budget, plus the
  // degraded-mode TCP plane for transfers that meet a resetting card.
  apps::ClusterOptions copts;
  copts.inic_hw_retransmit = true;
  copts.inic_max_retries = 16;
  copts.degraded_fallback = true;

  // Clean reference run.
  Time clean_total;
  {
    apps::SimCluster cluster(kNodes, apps::Interconnect::kInicIdeal,
                             model::default_calibration(), copts);
    const auto r = run_parallel_fft(cluster, kMatrix, fft_opts);
    clean_total = r.total;
    std::printf("clean run:   %8.2f ms  result %s\n", r.total.as_millis(),
                r.verified ? "verified" : "WRONG");
  }

  // The same run under a storm.  Windows are placed as fractions of the
  // clean duration; everything is seeded, so the storm replays exactly.
  const double t = clean_total.as_seconds();
  auto at = [t](double f) { return Time::seconds(t * f); };
  fault::GilbertElliottParams ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.25;
  ge.loss_bad = 0.5;  // ~10% of frames die, in bursts, while open

  fault::FaultPlan plan;
  plan.with_seed(2026)
      .with_burst_loss(at(0.05), at(0.80), ge)
      .with_link_down(/*node=*/1, at(0.40), at(0.05))
      .with_card_reset(/*node=*/2, at(0.10), at(0.25));

  apps::SimCluster cluster(kNodes, apps::Interconnect::kInicIdeal,
                           model::default_calibration(), copts);
  cluster.engine().set_time_budget(Time::seconds(5));  // watchdog backstop
  fault::FaultInjector injector(cluster, plan);
  const auto r = run_parallel_fft(cluster, kMatrix, fft_opts);

  std::printf("faulted run: %8.2f ms  result %s\n\n", r.total.as_millis(),
              r.verified ? "verified" : "WRONG");

  std::uint64_t retransmits = 0, crc_drops = 0, reset_drops = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    retransmits += cluster.card(i).retransmits();
    crc_drops += cluster.card(i).crc_drops();
    reset_drops += cluster.card(i).reset_drops();
  }
  Table table({"recovery metric", "count"});
  table.row().add("fault-window edges fired").add(
      static_cast<std::int64_t>(injector.events_fired()));
  table.row().add("frames dropped by fabric").add(
      static_cast<std::int64_t>(cluster.network().frames_dropped()));
  table.row().add("  of which in loss bursts").add(
      static_cast<std::int64_t>(cluster.network().frames_dropped_burst()));
  table.row().add("  of which link-down").add(
      static_cast<std::int64_t>(cluster.network().frames_dropped_link_down()));
  table.row().add("frames dropped at resetting card").add(
      static_cast<std::int64_t>(reset_drops));
  table.row().add("CRC drops at cards").add(
      static_cast<std::int64_t>(crc_drops));
  table.row().add("go-back-N retransmissions").add(
      static_cast<std::int64_t>(retransmits));
  table.row().add("transfers rerouted to TCP fallback").add(
      static_cast<std::int64_t>(cluster.fallback_transfers()));
  table.print();

  std::printf(
      "\nThe slowdown is the price of recovery: every lost burst costs a\n"
      "retransmission round, and transfers that met the resetting card\n"
      "crossed the degraded-mode TCP plane instead.  The result is still\n"
      "bit-identical to the serial oracle.\n");
  return r.verified ? 0 : 1;
}
