// Multi-hop fabric walkthrough: the same cluster wired three ways.
//
//   1. A 16-node 2-level fat tree running topology-aware collectives,
//      with the deterministic up/down routes and per-link congestion
//      counters printed afterwards.
//   2. A 16-node 2-D torus (4x4) running an allreduce while a scripted
//      interior-link outage (fault::InteriorLinkDownWindow) takes the
//      backbone link between switches 0 and 1 dark mid-run — hardware
//      go-back-N retransmission carries the collective to a verified
//      result anyway.
//
//   $ ./topology_demo
//
// Both runs are deterministic; scripts/check_determinism.sh replays this
// binary under ACC_TRACE_DIGEST=1 in varied environments and requires
// bit-identical digests (the multi-hop half of the contract).  Set
// ACC_TRACE=/tmp/topo.json for the full timeline: per-hop egress spans
// appear under "net", fault edges under "fault".
#include <cstdio>
#include <string>

#include "collectives/collectives.hpp"
#include "core/acc.hpp"

using namespace acc;

namespace {

constexpr std::size_t kNodes = 16;
constexpr std::size_t kElements = 4096;  // 32 KiB of doubles

std::string route_string(net::Network& net, int src, int dst) {
  std::string s = "host" + std::to_string(src);
  for (int sw : net.route(src, dst)) {
    s += " -> sw" + std::to_string(sw);
  }
  return s + " -> host" + std::to_string(dst);
}

}  // namespace

int main() {
  bool all_verified = true;

  // --- Part 1: fat tree -------------------------------------------------
  {
    apps::ClusterOptions copts;
    copts.topology = net::TopologyConfig::fat_tree(/*levels=*/2);
    apps::SimCluster cluster(kNodes, apps::Interconnect::kInicIdeal,
                             model::default_calibration(), copts);
    net::Network& net = cluster.network();
    std::printf("fat tree:  %s, %zu switches\n",
                net::describe_topology(copts.topology, kNodes).c_str(),
                net.switch_count());
    std::printf("  same-edge route:  %s\n", route_string(net, 0, 1).c_str());
    std::printf("  cross-edge route: %s\n",
                route_string(net, 0, (int)kNodes - 1).c_str());

    const auto bcast = coll::topology_broadcast(cluster, kElements, 21);
    const auto red = coll::topology_reduce(cluster, kElements, 22);
    all_verified = all_verified && bcast.verified && red.verified;
    std::printf("  broadcast %7.3f ms %s, reduce %7.3f ms %s\n",
                bcast.total.as_millis(), bcast.verified ? "ok" : "WRONG",
                red.total.as_millis(), red.verified ? "ok" : "WRONG");

    Table links({"interior link", "frames", "bytes", "peak queue (B)"});
    for (const auto& l : net.interior_link_stats()) {
      if (l.frames == 0) continue;
      links.row()
          .add("sw" + std::to_string(l.from_switch) + " -> sw" +
               std::to_string(l.to_switch))
          .add(static_cast<std::int64_t>(l.frames))
          .add(static_cast<std::int64_t>(l.bytes.count()))
          .add(static_cast<std::int64_t>(l.peak_queue.count()));
    }
    links.print();
  }

  // --- Part 2: torus under an interior-link outage ----------------------
  {
    apps::ClusterOptions copts;
    copts.topology = net::TopologyConfig::torus(/*dims=*/2);
    copts.inic_hw_retransmit = true;
    copts.inic_max_retries = 64;

    // Clean reference run to size the outage window.
    Time clean_total;
    {
      apps::SimCluster cluster(kNodes, apps::Interconnect::kInicIdeal,
                               model::default_calibration(), copts);
      const auto r = coll::topology_allreduce(cluster, kElements, 23);
      all_verified = all_verified && r.verified;
      clean_total = r.total;
      std::printf("\ntorus:     %s, clean allreduce %7.3f ms %s\n",
                  net::describe_topology(copts.topology, kNodes).c_str(),
                  r.total.as_millis(), r.verified ? "ok" : "WRONG");
    }

    // Same run with the sw0-sw1 backbone link dark for the middle of the
    // run.  Frames routed across the link die at the hop; go-back-N
    // retries carry them once the window closes.
    fault::FaultPlan plan;
    plan.with_seed(7).with_interior_link_down(/*switch_a=*/0, /*switch_b=*/1,
                                              clean_total * 0.2,
                                              clean_total * 0.4);
    apps::SimCluster cluster(kNodes, apps::Interconnect::kInicIdeal,
                             model::default_calibration(), copts);
    cluster.engine().set_time_budget(Time::seconds(5));  // watchdog backstop
    fault::FaultInjector injector(cluster, plan);
    const auto r = coll::topology_allreduce(cluster, kElements, 23);
    all_verified = all_verified && r.verified;

    std::uint64_t retransmits = 0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      retransmits += cluster.card(i).retransmits();
    }
    std::printf("faulted allreduce %7.3f ms %s\n", r.total.as_millis(),
                r.verified ? "ok" : "WRONG");
    std::printf("  link-down drops %llu, go-back-N retransmissions %llu\n",
                static_cast<unsigned long long>(
                    cluster.network().frames_dropped_link_down()),
                static_cast<unsigned long long>(retransmits));
  }

  return all_verified ? 0 : 1;
}
