// Custom offload: using the INIC device API directly to build a new
// in-stream application — the "Combined Compute/Protocol Accelerator"
// mode of Section 2, beyond the two applications the paper evaluates.
//
// Scenario: a distributed histogram/reduce.  Every node streams a block
// of samples to a collector node; the INIC's FPGA computes the per-block
// histogram *as the data flows through the card* ("processing data as it
// passes through the device at zero cost"), so the collector receives
// ready-made histograms instead of raw samples being post-processed on
// its host CPU.
//
//   $ ./custom_offload
#include <array>
#include <cstdio>
#include <vector>

#include "core/acc.hpp"

using namespace acc;

namespace {

constexpr int kCollector = 0;
constexpr std::size_t kNodes = 8;
constexpr std::size_t kSamplesPerNode = 1 << 18;
constexpr std::size_t kBins = 16;

using BinCounts = std::array<std::uint64_t, kBins>;

/// The FPGA kernel: samples in, histogram out, applied in-stream.
std::any histogram_kernel(std::any payload) {
  const auto samples = std::any_cast<std::vector<std::uint32_t>>(payload);
  BinCounts h{};
  for (std::uint32_t s : samples) {
    ++h[s >> 28];  // top 4 bits select one of 16 bins
  }
  return h;
}

sim::Process sender(apps::SimCluster& cluster, int me) {
  // Generate this node's samples and stream them through the card; the
  // send transform turns the raw stream into a histogram in flight.
  auto samples = algo::uniform_keys(kSamplesPerNode,
                                    static_cast<std::uint64_t>(me) + 1);
  inic::InicCard& card = cluster.card(static_cast<std::size_t>(me));
  card.set_send_transform(histogram_kernel);
  co_await card.send_stream(kCollector,
                            Bytes(kSamplesPerNode * sizeof(std::uint32_t)),
                            static_cast<std::uint64_t>(me),
                            std::move(samples));
}

sim::Process collector(apps::SimCluster& cluster, BinCounts& total,
                       Time& finished) {
  inic::InicCard& card = cluster.card(kCollector);
  for (std::size_t i = 0; i + 1 < kNodes; ++i) {
    proto::Message msg = co_await card.card_inbox().recv();
    const auto h = std::any_cast<BinCounts>(msg.payload);
    for (std::size_t b = 0; b < kBins; ++b) total[b] += h[b];
  }
  // Only the tiny histograms cross to the host, not the raw samples.
  co_await card.dma_to_host(Bytes(kBins * sizeof(std::uint64_t) * (kNodes - 1)));
  finished = cluster.engine().now();
}

}  // namespace

int main() {
  apps::SimCluster cluster(kNodes, apps::Interconnect::kInicIdeal);

  BinCounts total{};
  Time finished = Time::zero();
  sim::ProcessGroup group(cluster.engine());
  for (int node = 1; node < static_cast<int>(kNodes); ++node) {
    group.spawn(sender(cluster, node));
  }
  group.spawn(collector(cluster, total, finished));
  group.join();

  // The collector node also contributes locally (no network needed).
  {
    auto samples = algo::uniform_keys(kSamplesPerNode, 1000);
    const auto h =
        std::any_cast<BinCounts>(histogram_kernel(std::move(samples)));
    for (std::size_t b = 0; b < kBins; ++b) total[b] += h[b];
  }

  std::uint64_t count = 0;
  for (std::uint64_t c : total) count += c;
  std::printf("distributed histogram over %zu nodes x %zu samples "
              "(done at %.2f ms simulated):\n",
              kNodes, kSamplesPerNode, finished.as_millis());
  for (std::size_t b = 0; b < kBins; ++b) {
    std::printf("  bin %2zu: %8llu\n", b,
                static_cast<unsigned long long>(total[b]));
  }
  std::printf("total samples binned: %llu (expected %llu)\n",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(kNodes * kSamplesPerNode));
  std::printf("host CPU interrupts during the whole run: %llu\n",
              static_cast<unsigned long long>(
                  cluster.node(kCollector).cpu().interrupts_serviced()));
  return count == kNodes * kSamplesPerNode ? 0 : 1;
}
