// Quickstart: build an 8-node simulated Beowulf cluster twice — once
// with standard Gigabit Ethernet NICs and once with Intelligent NICs —
// run the same distributed 2D-FFT on both (with full data verification),
// and compare.
//
//   $ ./quickstart
#include <cstdio>

#include "core/acc.hpp"

using namespace acc;

int main() {
  constexpr std::size_t kNodes = 8;
  constexpr std::size_t kMatrix = 256;  // 256x256 complex doubles

  std::printf("ACC quickstart: %zux%zu 2D-FFT on %zu nodes\n\n", kMatrix,
              kMatrix, kNodes);

  apps::FftRunOptions opts;
  opts.verify = true;  // move the real matrix and check the result

  for (auto ic : {apps::Interconnect::kGigabitTcp,
                  apps::Interconnect::kInicIdeal}) {
    apps::SimCluster cluster(kNodes, ic);
    const apps::FftRunResult r = run_parallel_fft(cluster, kMatrix, opts);
    std::printf("%-24s total %8.2f ms (compute %6.2f ms, transpose %7.2f ms)"
                "  result %s\n",
                to_string(ic), r.total.as_millis(), r.compute.as_millis(),
                r.transpose.as_millis(),
                r.verified ? "verified" : "WRONG");
  }

  const auto serial = apps::run_serial_fft(model::default_calibration(),
                                           kMatrix);
  std::printf("\nserial reference: %.2f ms\n", serial.total.as_millis());
  std::printf(
      "\nThe INIC run wins because the transpose's data manipulation and\n"
      "protocol processing happen on the NIC's FPGAs, in the data stream,\n"
      "with no host interrupts and no TCP slow start.\n");
  return 0;
}
