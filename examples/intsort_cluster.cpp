// Distributed integer sort across interconnects with the paper's phase
// breakdown (Sections 3.2, 4.2, 6.2) — including the prototype's
// two-phase bucket refinement.
//
//   $ ./intsort_cluster [log2_keys] [max_nodes]
#include <cstdio>
#include <cstdlib>

#include "core/acc.hpp"

using namespace acc;

int main(int argc, char** argv) {
  const std::size_t log2_keys =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const std::size_t max_nodes =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
  const std::size_t keys = std::size_t{1} << log2_keys;

  // Part 1: verified runs with real keys.
  std::puts("verified 2^16-key runs (real keys through the simulated cluster):");
  for (auto ic :
       {apps::Interconnect::kGigabitTcp, apps::Interconnect::kInicIdeal,
        apps::Interconnect::kInicPrototype}) {
    apps::SimCluster cluster(4, ic);
    apps::SortRunOptions opts;
    opts.verify = true;
    const auto r = run_parallel_sort(cluster, std::size_t{1} << 16, opts);
    std::printf("  %-24s %s\n", to_string(ic),
                r.verified ? "globally sorted" : "SORT FAILURE");
  }

  // Part 2: timing sweep.
  std::printf("\n2^%zu keys timing sweep:\n", log2_keys);
  const auto serial = apps::run_serial_sort(model::default_calibration(), keys);
  std::printf(
      "  serial: %.0f ms (bucket %.0f + %.0f ms, count sort %.0f ms)\n\n",
      serial.total.as_millis(), serial.bucket_phase1.as_millis(),
      serial.bucket_phase2.as_millis(), serial.count_sort.as_millis());

  Table table({"P", "interconnect", "total (ms)", "bucket p1 (ms)",
               "bucket p2 (ms)", "count sort (ms)", "speedup"});
  for (std::size_t p = 2; p <= max_nodes; p *= 2) {
    for (auto ic : {apps::Interconnect::kGigabitTcp,
                    apps::Interconnect::kInicPrototype,
                    apps::Interconnect::kInicIdeal}) {
      const auto r = core::sort_point(ic, keys, p);
      table.row()
          .add(static_cast<std::int64_t>(p))
          .add(to_string(ic))
          .add(r.total.as_millis(), 1)
          .add(r.bucket_phase1.as_millis(), 1)
          .add(r.bucket_phase2.as_millis(), 1)
          .add(r.count_sort.as_millis(), 1)
          .add(serial.total / r.total, 2);
    }
  }
  table.print();
  std::puts(
      "\nNote the INIC rows: bucket phases are zero (absorbed into the\n"
      "stream) and speedups are superlinear; the prototype pays a host\n"
      "phase-2 refinement because its FPGAs only fit 16 hardware buckets.");
  return 0;
}
