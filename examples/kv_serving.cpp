// KV serving walkthrough: the open-loop key-value workload
// (docs/SERVING.md) on the host TCP plane and the hardened INIC plane,
// clean and under a sustained ~30% bursty-loss storm.
//
//   $ ./kv_serving
//
// Clients fire Zipf-skewed GET/PUT requests at a fixed arrival rate —
// open loop, so a slow response never slows the request stream and the
// queueing delay it causes lands in the measured latency.  The headline
// is the tail: under loss, the host plane pays full TCP retransmission
// timeouts per lost frame while the INIC's hardware go-back-N recovers
// in round-trip time — watch the p99/p999 gap between the two planes.
//
// The run is deterministic: same seed, same storm, same percentiles.
// Set ACC_TRACE_DIGEST=1 to print the digest per cluster —
// scripts/check_determinism.sh replays this demo twice and compares.
#include <cstdio>

#include "core/acc.hpp"

using namespace acc;

namespace {

struct PlaneResult {
  apps::KvRunResult clean;
  apps::KvRunResult chaos;
};

apps::ClusterOptions plane_options(bool nic) {
  apps::ClusterOptions copts;
  if (nic) {
    copts.inic_hw_retransmit = true;
    copts.inic_max_retries = 0;  // retry forever; lateness, not loss
  }
  return copts;
}

// ~30% average loss in bursts: 1/3 of the time in a bad state that
// drops 90% of frames (Gilbert-Elliott).
fault::FaultPlan storm() {
  fault::GilbertElliottParams ge;
  ge.p_good_to_bad = 0.1;
  ge.p_bad_to_good = 0.2;
  ge.loss_bad = 0.9;
  fault::FaultPlan plan;
  plan.with_seed(2026).with_burst_loss(Time::micros(50), Time::seconds(2), ge);
  return plan;
}

apps::KvRunResult run_plane(bool nic, bool chaos,
                            const apps::KvRunOptions& opts) {
  apps::SimCluster cluster(
      opts.clients + opts.servers,
      nic ? apps::Interconnect::kInicIdeal : apps::Interconnect::kGigabitTcp,
      model::default_calibration(), plane_options(nic));
  cluster.engine().set_time_budget(Time::seconds(30));  // watchdog backstop
  std::unique_ptr<fault::FaultInjector> injector;
  if (chaos) {
    injector = std::make_unique<fault::FaultInjector>(cluster, storm());
  }
  return run_kv_serving(cluster, opts);
}

void add_row(Table& table, const char* label, const apps::KvRunResult& r) {
  table.row()
      .add(label)
      .add(static_cast<std::int64_t>(r.responses))
      .add(r.p50.as_micros())
      .add(r.p99.as_micros())
      .add(r.p999.as_micros())
      .add(static_cast<double>(r.goodput_bytes_per_sec) / 1e6)
      .add(r.verified ? "yes" : "NO");
}

}  // namespace

int main() {
  apps::KvRunOptions opts;
  opts.clients = 4;
  opts.servers = 4;
  opts.requests_per_client = 64;
  opts.rate_hz = 20000.0;

  std::printf(
      "KV serving demo: %zu clients -> %zu shards, Zipf(%.2f) keys,\n"
      "open-loop Poisson arrivals at %.0f req/s per client\n\n",
      opts.clients, opts.servers, opts.zipf_theta, opts.rate_hz);

  bool all_ok = true;
  for (const bool nic : {false, true}) {
    PlaneResult pr;
    pr.clean = run_plane(nic, /*chaos=*/false, opts);
    pr.chaos = run_plane(nic, /*chaos=*/true, opts);
    all_ok = all_ok && pr.clean.verified && pr.chaos.verified;

    std::printf("%s plane:\n", nic ? "INIC (hw go-back-N)" : "host TCP");
    Table table({"scenario", "responses", "p50 us", "p99 us", "p999 us",
                 "goodput MB/s", "verified"});
    add_row(table, "clean fabric", pr.clean);
    add_row(table, "~30% bursty loss", pr.chaos);
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Every response carried the right value on both planes; the loss\n"
      "storm only moved the *tail*.  The INIC recovers lost frames in\n"
      "hardware at round-trip granularity, so its p99 degrades far less\n"
      "than the host plane's timeout-bound TCP recovery.\n");
  return all_ok ? 0 : 1;
}
