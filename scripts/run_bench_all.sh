#!/usr/bin/env bash
# Builds and runs the unified benchmark driver (docs/BENCHMARKS.md).
#
# Usage: scripts/run_bench_all.sh [--reduced] [extra bench_all flags...]
#   --reduced   CI-sized grid + the serial-digest isolation gate
#               (equivalent to --points=reduced --check-digests)
#
# Output: BENCH_results.json in the repository root (override with
# --out=PATH), plus the per-suite tables on stdout.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

args=("--out=$repo_root/BENCH_results.json")
for arg in "$@"; do
  if [[ "$arg" == "--reduced" ]]; then
    args+=(--points=reduced --check-digests)
  else
    args+=("$arg")
  fi
done

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" -j --target bench_all >/dev/null

exec "$build_dir/bench/bench_all" "${args[@]}"
