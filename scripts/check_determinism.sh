#!/usr/bin/env bash
# Cross-environment determinism check for the simulator's trace digests.
#
# The determinism contract (docs/TRACING.md) says a run's trace digest is
# a pure function of (configuration, seeds) — independent of address-space
# layout, locale, and wall-clock.  The in-process tests
# (trace_determinism_test) prove same-process replay; this script proves
# the stronger cross-process property by running the same workloads in
# separate processes under deliberately different environments:
#
#   * fresh ASLR layout per process (plus an explicitly randomized layout
#     via `setarch -R`'s complement when available);
#   * different locales (C vs. any available UTF-8 locale), which would
#     expose locale-dependent formatting leaking into digests;
#   * twice through the determinism test binary, to catch flakiness.
#
# Usage: scripts/check_determinism.sh [build-dir]
#   ACC_CHECK_SANITIZE=1   also configure the build with -DACC_SANITIZE=ON
#                          (ASan changes the heap layout dramatically, a
#                          good stressor for pointer-hashing bugs).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-determinism}"

cmake_flags=()
if [[ "${ACC_CHECK_SANITIZE:-0}" != "0" ]]; then
  cmake_flags+=(-DACC_SANITIZE=ON)
  echo "== configuring with ASan/UBSan =="
fi

echo "== building ($build_dir) =="
cmake -B "$build_dir" -S "$repo_root" "${cmake_flags[@]+"${cmake_flags[@]}"}" >/dev/null
cmake --build "$build_dir" -j >/dev/null

# Pick a second locale if the system has one; C always exists.
alt_locale="C"
if command -v locale >/dev/null 2>&1; then
  alt_locale="$(locale -a 2>/dev/null | grep -im1 'utf-\?8' || echo C)"
fi

# Wrapper that re-randomizes ASLR explicitly when setarch supports it
# (no-op fallback keeps the script portable).
aslr_wrap() {
  if command -v setarch >/dev/null 2>&1 &&
     setarch "$(uname -m)" -R true >/dev/null 2>&1; then
    # -R *disables* ASLR: running once with and once without it guarantees
    # two different address-space layouts even if system ASLR is off.
    if [[ "$1" == "fixed" ]]; then
      shift
      setarch "$(uname -m)" -R "$@"
      return
    fi
  fi
  shift
  "$@"
}

# Digest probe: an example run that prints "acc-trace-digest <hex>" per
# cluster via the ACC_TRACE_DIGEST environment hook.  $3 picks the probe
# binary: quickstart exercises healthy runs, fault_injection a
# fault-injected run (scripted storm + seeded loss chain), topology_demo
# multi-hop fabrics (fat-tree and torus routing, per-hop queuing, an
# interior-link outage), collective_offload the collective backends
# (host trees over TCP and INIC plus the card-resident NIC engine's
# trigger tables), and failover_demo the adaptive-routing plane (a
# permanent mid-collective link cut: link-state detection instants,
# deterministic re-convergence, go-back-N reroute escalation), and
# kv_serving the open-loop serving workload (Poisson arrivals, Zipf
# keys, per-request latency histogram, with a sustained bursty-loss
# storm on both transport planes), and parallel_engine_demo the
# window-scheduled parallel engine (the LP-partitioned fabric workload
# and the SimCluster engine_threads facade, each executed at 1/2/4/8
# worker threads inside one process; the binary exits non-zero if any
# thread count diverges, and its digest lines let this script compare
# the same runs across environments) — together covering the healthy,
# faulted, multi-hop, on-card-collective, failover, serving and
# parallel-engine parts of the determinism contract (docs/FAULTS.md,
# docs/NETWORK.md, docs/COLLECTIVES.md, docs/SERVING.md,
# docs/ENGINE.md).
digests_of() {  # $1: aslr mode, $2: locale, $3: probe binary
  local mode="$1" loc="$2" probe="$3"
  aslr_wrap "$mode" env LC_ALL="$loc" ACC_TRACE_DIGEST=1 \
    "$build_dir/examples/$probe" 2>&1 >/dev/null |
    grep '^acc-trace-digest' || true
}

fail=0
for probe in quickstart fault_injection topology_demo collective_offload \
             failover_demo kv_serving parallel_engine_demo; do
  echo "== cross-environment digest comparison (examples/$probe) =="
  baseline="$(digests_of varied C "$probe")"
  if [[ -z "$baseline" ]]; then
    echo "FAIL: no digests emitted (ACC_TRACE_DIGEST hook broken?)" >&2
    exit 1
  fi
  for mode in varied fixed; do
    for loc in C "$alt_locale"; do
      got="$(digests_of "$mode" "$loc" "$probe")"
      if [[ "$got" != "$baseline" ]]; then
        echo "FAIL: digest mismatch (probe=$probe aslr=$mode locale=$loc)" >&2
        echo "--- expected ---"; echo "$baseline"
        echo "--- got ---"; echo "$got"
        fail=1
      else
        echo "ok: probe=$probe aslr=$mode locale=$loc"
      fi
    done
  done
done

echo "== determinism test suite, twice =="
for round in 1 2; do
  loc="$([[ $round == 1 ]] && echo C || echo "$alt_locale")"
  mode="$([[ $round == 1 ]] && echo varied || echo fixed)"
  if aslr_wrap "$mode" env LC_ALL="$loc" \
      "$build_dir/tests/trace_determinism_test" >/dev/null; then
    echo "ok: round $round (aslr=$mode locale=$loc)"
  else
    echo "FAIL: trace_determinism_test round $round (aslr=$mode locale=$loc)" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  echo "DETERMINISM CHECK FAILED" >&2
  exit 1
fi
echo "determinism check passed"
